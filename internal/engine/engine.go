// Package engine is a live, concurrent in-memory key-value store using
// Speculative Concurrency Control with goroutine shadows — the systems
// counterpart of the simulator in internal/rtdbs.
//
// A transaction is a deterministic closure over Tx. Its optimistic shadow
// runs the closure immediately, reading committed values. On a detected
// read-write conflict the engine forks a speculative shadow: a second
// goroutine re-running the closure, parked at the conflicting read until
// the conflicter resolves. If the conflict materializes, the optimistic
// shadow aborts and the speculative one wakes with the fresh value,
// finishing without a from-scratch restart. OCC-BC mode restarts instead
// (the paper's baseline). Closures must be deterministic and side-effect
// free before Update returns: all but one concurrent run is discarded.
//
// Commits coalesce under group commit (groupcommit.go), and every
// install is appended to Config.CommitLog under the store latch — the
// total commit order replication ships (internal/repl). Layer map:
// docs/ARCHITECTURE.md.
package engine

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Mode selects the concurrency control protocol.
type Mode int

const (
	// SCC2S runs an optimistic shadow plus up to one speculative shadow
	// per transaction (the paper's SCC-2S).
	SCC2S Mode = iota
	// OCCBC runs optimistically and restarts on broadcast commit.
	OCCBC
)

func (m Mode) String() string {
	if m == OCCBC {
		return "OCC-BC"
	}
	return "SCC-2S"
}

// ErrAborted is returned by Tx operations inside a shadow that lost its
// conflict; the closure must propagate it (or any error wrapping it).
var ErrAborted = errors.New("engine: shadow aborted")

// AttemptsError reports a transaction that exhausted its re-execution
// budget without committing — the engine's "I give up under contention"
// verdict. It is a distinct type so callers (the serving layer's TXN
// COMMIT) can classify it as a retryable conflict without matching
// message text.
type AttemptsError struct{ Attempts int }

func (e *AttemptsError) Error() string {
	return fmt.Sprintf("engine: transaction exceeded %d attempts", e.Attempts)
}

// Config configures a Store.
type Config struct {
	Mode Mode
	// MaxAttempts bounds closure re-executions per transaction
	// (0 = 100). Exhausted attempts surface as an error.
	MaxAttempts int
	// GroupCommit coalesces commit critical sections: many finished
	// transactions commit under one store-latch acquisition per flush
	// window. See groupcommit.go.
	GroupCommit GroupCommit
	// CommitLog, when non-nil, receives every installed write set under
	// the store's commit latch — the store's total commit order, suitable
	// for replication log shipping (internal/repl) and write-ahead
	// logging (internal/durable). The map handed to Append is retained;
	// callers of the engine never mutate a write set after commit, and
	// neither must the log. It can also be installed after Open with
	// SetCommitLog, which recovery uses to replay history unlogged.
	CommitLog CommitLog
	// Metrics, when non-nil, receives hot-path observations (group-commit
	// batch sizes and flush latency, speculative-shadow park waits,
	// conflict-scan work). All fields must be populated. Each observation
	// is an atomic add or two, so leaving this enabled in production is
	// the intended configuration.
	Metrics *Metrics
}

// Metrics are the engine's optional instruments, registered by the
// serving layer in its obs.Registry and shared across shards (the
// counters aggregate; the per-shard split is not worth the label
// cardinality).
type Metrics struct {
	// BatchSize observes commits processed per commit-latch acquisition
	// (1 on the per-commit path); the coalescing win is its mean.
	BatchSize *obs.Histogram
	// FlushSeconds observes group-commit flush latency: latch acquisition
	// through WAL sync, the window every commit in the batch waits out.
	FlushSeconds *obs.Histogram
	// ParkSeconds observes how long speculative shadows sit parked at
	// their gate — the park→promotion gap when the shadow goes on to win.
	ParkSeconds *obs.Histogram
	// ConflictScans counts in-flight handles examined by the Read and
	// Write Rules — the O(active) work that makes conflict detection
	// expensive under load.
	ConflictScans *obs.Counter
}

// CommitLog records installed write sets in commit order. Append is called
// with the store latch held, so calls are serialized and their order IS
// the store's version order; implementations must be fast and must not
// call back into the store.
type CommitLog interface {
	Append(writes map[string][]byte)
}

// ValuedCommitLog is an optional CommitLog extension: when implemented,
// the engine calls AppendValued instead of Append, passing the committing
// transaction's value alongside its write set (zero for replicated or
// unvalued installs). The durability layer uses it to rank shards by the
// value of work pending a checkpoint.
type ValuedCommitLog interface {
	CommitLog
	AppendValued(writes map[string][]byte, value float64)
}

// EpochReporter is an optional CommitLog extension: LastEpoch returns
// the global commit epoch of the newest record the sink has accepted.
// Sinks that allocate standalone epochs (repl.Log, the durable WAL
// sink) implement it; the engine reads it right after an install, still
// under the commit latch, to stamp the committing transaction's trace
// with its epoch — the join key between a client-held trace and the
// flight recorder's cross-node timeline.
type EpochReporter interface {
	LastEpoch() uint64
}

// CommitSyncer is an optional CommitLog extension: when implemented, the
// engine calls Sync once per commit batch that installed writes — after
// releasing the store latch and before any commit verdict of the batch is
// delivered to its caller. A write-ahead log uses this to make durability
// ride the batch boundary: one fsync per group-commit flush covers every
// commit acknowledged by it.
//
// A Sync error FAILS the batch's verdicts: the engine cannot un-commit
// installed writes, but it can — and does — refuse to acknowledge them,
// surfacing a *SyncError to every committer of the batch instead of
// success. No caller ever sees an OK verdict for an unsynced batch.
// Implementations must additionally make failures sticky (refuse further
// appends — see durable.Manager), and the operator policy decides what a
// broken log means; sccserve fail-stops inline.
type CommitSyncer interface {
	Sync() error
}

// CrossCommitLog is an optional CommitLog extension for multi-store
// installs: AppendCross records the write set stamped with the
// coordinator-assigned commit epoch and the full participant shard set,
// instead of a sink-assigned standalone epoch. Sinks without it fall back
// to AppendValued/Append (losing the atomicity metadata — acceptable only
// for in-memory test sinks).
type CrossCommitLog interface {
	CommitLog
	AppendCross(writes map[string][]byte, value float64, epoch uint64, shards []int)
}

// IntentLogger is an optional CommitLog extension implemented by
// write-ahead sinks. A cross-shard commit writes one intent record per
// participant WAL before the data records, and one decision record to the
// coordinator's WAL only after every participant's data is durable; boot
// recovery treats the decision as the commit point and reconciles
// intent-without-decision epochs to all-or-nothing (internal/durable).
// ReleaseCross un-gates the epoch's records for replication shipping once
// the decision is durable.
type IntentLogger interface {
	AppendIntent(epoch uint64, shards []int) error
	AppendDecision(epoch uint64) error
	ReleaseCross(epoch uint64)
}

// SyncError wraps a commit-log Sync failure delivered as a commit
// verdict: the transaction's writes are installed in memory but were
// never acknowledged as durable. Callers must report failure (the serving
// layer answers ERR and books the value as lost to wal_error) and must
// not retry — the writes are in place and the log is sticky-broken.
type SyncError struct{ Err error }

func (e *SyncError) Error() string { return "engine: commit not durable: " + e.Err.Error() }
func (e *SyncError) Unwrap() error { return e.Err }

// Stats are cumulative engine counters.
type Stats struct {
	Commits    int64
	Aborts     int64 // optimistic shadows aborted by conflicting commits
	Restarts   int64 // from-scratch re-executions (OCC-BC path)
	Forks      int64 // speculative shadows forked
	Promotions int64 // speculative shadows that finished the transaction
	Deferrals  int64 // commits deferred for a higher-value conflicter
	// CommitBatches counts commit-latch acquisitions spent processing
	// commit attempts: one per attempt on the per-commit path, one per
	// flush under group commit — the coalescing win is Commits/CommitBatches.
	CommitBatches int64
}

// Add accumulates other's counters into s (shard-level aggregation lives
// here so a counter added to the struct cannot be silently dropped from
// aggregates).
func (s *Stats) Add(other Stats) {
	s.Commits += other.Commits
	s.Aborts += other.Aborts
	s.Restarts += other.Restarts
	s.Forks += other.Forks
	s.Promotions += other.Promotions
	s.Deferrals += other.Deferrals
	s.CommitBatches += other.CommitBatches
}

// Store is the engine.
type Store struct {
	cfg Config
	gc  *groupCommitter // nil unless Config.GroupCommit.Enabled

	mu        sync.Mutex
	epochRep  EpochReporter // cfg.CommitLog's epoch view, cached (nil if none)
	committed map[string]versioned
	active    map[*txnHandle]struct{}
	stats     Stats
	closed    bool
}

type versioned struct {
	val []byte
	ver uint64
}

// Open returns an empty store.
func Open(cfg Config) *Store {
	if cfg.MaxAttempts == 0 {
		cfg.MaxAttempts = 100
	}
	s := &Store{
		cfg:       cfg,
		committed: make(map[string]versioned),
		active:    make(map[*txnHandle]struct{}),
	}
	s.epochRep, _ = cfg.CommitLog.(EpochReporter)
	if cfg.GroupCommit.Enabled {
		s.gc = newGroupCommitter(s, cfg.GroupCommit)
	}
	return s
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Get reads a committed value outside any transaction.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.committed[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v.val))
	copy(out, v.val)
	return out, true
}

// txnHandle is one logical transaction: the closure plus its shadows.
type txnHandle struct {
	store *Store
	fn    func(*Tx) error
	value float64
	tr    *obs.Trace // nil unless the request asked for a lifecycle trace

	// done is closed when the transaction commits or gives up; shadows of
	// other transactions gate on it.
	done chan struct{}

	// guarded by store.mu:
	opt      *attempt
	shadow   *attempt
	writes   map[string][]byte // optimistic shadow's write buffer
	resolved bool
	result   any // the committed attempt's stashed result
	attempts int // restarts so far; group commit orders batches by it
}

// attempt is one shadow: a single run of the closure.
type attempt struct {
	h    *txnHandle
	spec bool // speculative: parks at gateIdx until the gate opens
	// gateIdx is the read ordinal to park at. The gate opens when the
	// conflicting transaction resolves (gateOn.done) or when its current
	// optimistic attempt aborts (gateAtt.aborted) — the latter keeps the
	// engine live when two transactions' shadows would otherwise gate on
	// each other after a third party aborts both optimistic runs.
	gateIdx int
	gateOn  *txnHandle
	gateAtt *attempt

	aborted chan struct{} // closed under store.mu exactly once
	reads   map[string]uint64
	readAt  map[string]int // first-read ordinal per key
	readSeq int
	writes  map[string][]byte
	result  any // written only by this attempt's goroutine via Tx.Stash
	report  chan verdict
}

func (a *attempt) abortLocked(s *Store) {
	select {
	case <-a.aborted:
	default:
		close(a.aborted)
		s.stats.Aborts++
	}
}

// Tx is the transactional view a closure operates on.
type Tx struct {
	a *attempt
}

// Get returns the value of key as of this shadow's serialization view.
func (tx *Tx) Get(key string) ([]byte, error) {
	a := tx.a
	s := a.h.store

	// A speculative shadow parks at its gate until the conflicting
	// transaction resolves (commit or give-up) — the channel equivalent
	// of the simulator's Blocking Rule.
	if a.spec && a.readSeq == a.gateIdx && a.gateOn != nil {
		gate, gateAtt := a.gateOn, a.gateAtt
		a.gateOn, a.gateAtt = nil, nil
		a.h.tr.Event(obs.StagePark)
		parkStart := time.Now()
		aborted := false
		if gateAtt != nil {
			select {
			case <-gate.done:
			case <-gateAtt.aborted:
			case <-a.aborted:
				aborted = true
			}
		} else {
			select {
			case <-gate.done:
			case <-a.aborted:
				aborted = true
			}
		}
		if met := s.cfg.Metrics; met != nil {
			met.ParkSeconds.Observe(int64(time.Since(parkStart)))
		}
		if aborted {
			return nil, ErrAborted
		}
		a.h.tr.Event(obs.StageResume)
	}
	select {
	case <-a.aborted:
		return nil, ErrAborted
	default:
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, mine := a.writes[key]; mine {
		// Read-your-writes from the private buffer.
		out := make([]byte, len(a.writes[key]))
		copy(out, a.writes[key])
		a.readSeq++
		return out, nil
	}
	v := s.committed[key]
	if a.reads == nil {
		a.reads = make(map[string]uint64)
		a.readAt = make(map[string]int)
	}
	if _, seen := a.reads[key]; !seen {
		a.reads[key] = v.ver
		a.readAt[key] = a.readSeq
	}
	idx := a.readAt[key]
	a.readSeq++

	// Read Rule: this read conflicts with every in-flight writer of key.
	if !a.spec && s.cfg.Mode == SCC2S {
		scanned := 0
		for other := range s.active {
			if other == a.h || other.resolved {
				continue
			}
			scanned++
			if _, wrote := other.writes[key]; wrote {
				s.forkShadowLocked(a.h, other, idx)
			}
		}
		if met := s.cfg.Metrics; met != nil && scanned > 0 {
			met.ConflictScans.Add(int64(scanned))
		}
	}
	out := make([]byte, len(v.val))
	copy(out, v.val)
	return out, nil
}

// Stash records v as this execution's result. A closure may run several
// times concurrently (shadows); each execution must Stash into its own
// freshly built value, and only the execution that commits has its stash
// returned by UpdateResult. This is the race-free way to get data out of
// a transaction: captured variables are shared across shadow runs,
// stashes are not.
func (tx *Tx) Stash(v any) { tx.a.result = v }

// Set buffers a write.
func (tx *Tx) Set(key string, val []byte) error {
	a := tx.a
	s := a.h.store
	select {
	case <-a.aborted:
		return ErrAborted
	default:
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	buf := make([]byte, len(val))
	copy(buf, val)
	a.writes[key] = buf
	if !a.spec {
		a.h.writes[key] = buf
		// Write Rule: in-flight readers of key gain a conflict with us.
		if s.cfg.Mode == SCC2S {
			scanned := 0
			for other := range s.active {
				if other == a.h || other.resolved || other.opt == nil {
					continue
				}
				scanned++
				if at, read := other.opt.readAt[key]; read {
					s.forkShadowLocked(other, a.h, at)
				}
			}
			if met := s.cfg.Metrics; met != nil && scanned > 0 {
				met.ConflictScans.Add(int64(scanned))
			}
		}
	}
	return nil
}

// forkShadowLocked gives h a speculative shadow gated on the resolution of
// gateOn. SCC-2S keeps a single shadow: an existing one is kept (it parks
// at the earliest conflict already; re-running the closure from the start
// subsumes any later gate).
func (s *Store) forkShadowLocked(h, gateOn *txnHandle, gateIdx int) {
	if h.shadow != nil || h.resolved {
		return
	}
	sh := &attempt{
		h: h, spec: true, gateIdx: gateIdx, gateOn: gateOn, gateAtt: gateOn.opt,
		aborted: make(chan struct{}),
		writes:  make(map[string][]byte),
	}
	h.shadow = sh
	s.stats.Forks++
	h.tr.Event(obs.StageFork)
	go h.runAttempt(sh)
}

// Update executes fn transactionally and blocks until an execution of fn
// commits (or the attempt budget is exhausted / fn returns a non-conflict
// error). All Update transactions have equal worth; see UpdateValued for
// the value-cognizant variant.
func (s *Store) Update(fn func(*Tx) error) error {
	return s.UpdateValued(0, fn)
}

// UpdateResult is Update returning the committed execution's Tx.Stash
// value (nil if it never stashed).
func (s *Store) UpdateResult(fn func(*Tx) error) (any, error) {
	return s.UpdateValuedResult(0, fn)
}

// UpdateValued is Update with a transaction value, the live-engine
// counterpart of SCC-VW's commit deferment: a finished transaction whose
// in-flight conflicters include one of strictly higher value yields to it
// (waits for it to resolve, then revalidates) instead of committing
// immediately and destroying the more valuable work. Strict value
// dominance makes deferral cycles impossible. Zero-value transactions
// never defer and are never yielded to.
func (s *Store) UpdateValued(value float64, fn func(*Tx) error) error {
	_, err := s.UpdateValuedResult(value, fn)
	return err
}

// UpdateValuedResult is UpdateValued returning the committed execution's
// Tx.Stash value. h.result is published under the store latch by the
// winning attempt's tryCommit before resolved is set, so reading it after
// observing the commit is race-free even if a losing shadow is still
// executing the closure.
func (s *Store) UpdateValuedResult(value float64, fn func(*Tx) error) (any, error) {
	return s.UpdateTracedResult(value, nil, fn)
}

// UpdateTracedResult is UpdateValuedResult with a lifecycle trace: when
// tr is non-nil, every stage the transaction passes through inside the
// engine — fork, park, resume, promotion, restart, defer, install — is
// stamped onto it, from whichever shadow goroutine reaches the stage.
// A nil tr costs one predictable branch per site.
func (s *Store) UpdateTracedResult(value float64, tr *obs.Trace, fn func(*Tx) error) (any, error) {
	h := &txnHandle{
		store:  s,
		fn:     fn,
		value:  value,
		tr:     tr,
		done:   make(chan struct{}),
		writes: make(map[string][]byte),
	}
	defer close(h.done)

	for attempts := 0; attempts < s.cfg.MaxAttempts; attempts++ {
		a := &attempt{
			h:       h,
			aborted: make(chan struct{}),
			writes:  make(map[string][]byte),
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errors.New("engine: store closed")
		}
		h.opt = a
		h.shadow = nil
		h.writes = make(map[string][]byte)
		h.attempts = attempts
		s.active[h] = struct{}{}
		if attempts > 0 {
			s.stats.Restarts++
			h.tr.Event(obs.StageRestart)
		}
		s.mu.Unlock()

		v := h.runSync(a)
		if v.committed {
			if v.err != nil {
				// Installed but never made durable (Sync failed): the
				// verdict is an error, not success — no ack may race a
				// failed sync. The transaction must not be retried.
				s.retire(h)
				return nil, v.err
			}
			return h.result, nil
		}
		if v.err != nil && !errors.Is(v.err, ErrAborted) {
			// A shadow may have already committed the transaction while
			// the optimistic run surfaced an error; the commit wins.
			// Retire first — it aborts the shadow under s.mu, after which
			// no commit can happen — so the resolved flag read next is
			// final, not a racy sample.
			s.mu.Lock()
			sh := h.shadow
			s.mu.Unlock()
			s.retire(h)
			s.mu.Lock()
			resolved := h.resolved
			s.mu.Unlock()
			if resolved {
				// The committing shadow's verdict is delivered only after
				// the commit log's Sync (tryCommit/flush order); returning
				// off the resolved flag alone would acknowledge a commit
				// the WAL has not yet synced. Wait out the report — and
				// honor its sync error: a shadow that installed writes the
				// log could not sync must surface failure, not success.
				if sh != nil {
					if sv := <-h.shadowDone(sh); sv.committed && sv.err != nil {
						return nil, sv.err
					}
				}
				return h.result, nil
			}
			return nil, v.err
		}
		// Aborted: if a speculative shadow is running it may finish the
		// transaction; wait for its verdict before restarting.
		s.mu.Lock()
		sh := h.shadow
		s.mu.Unlock()
		if sh != nil {
			sv := <-h.shadowDone(sh)
			if sv.committed {
				s.retire(h)
				if sv.err != nil {
					return nil, sv.err
				}
				return h.result, nil
			}
			if sv.err != nil && !errors.Is(sv.err, ErrAborted) {
				s.retire(h)
				return nil, sv.err
			}
		}
		s.retire(h)
		// Fall through to a fresh optimistic attempt (restart).
	}
	s.retire(h)
	return nil, &AttemptsError{Attempts: s.cfg.MaxAttempts}
}

// retire removes h from the active set.
func (s *Store) retire(h *txnHandle) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if h.shadow != nil {
		h.shadow.abortLocked(s)
		h.shadow = nil
	}
	delete(s.active, h)
}

type verdict struct {
	err       error
	committed bool
}

// runSync runs an attempt in the calling goroutine.
func (h *txnHandle) runSync(a *attempt) verdict {
	err := h.fn(&Tx{a: a})
	if err != nil {
		return verdict{err: err}
	}
	h.store.deferForValue(a)
	committed, err := h.store.tryCommit(a)
	return verdict{err: err, committed: committed}
}

// deferForValue implements the VW-style Termination Rule: while a strictly
// higher-value transaction conflicts with the finished attempt, wait for
// it to resolve (bounded rounds keep the engine robust against value
// churn). The subsequent validation handles whatever happened meanwhile.
func (s *Store) deferForValue(a *attempt) {
	for round := 0; round < 3; round++ {
		s.mu.Lock()
		var wait *txnHandle
		for other := range s.active {
			if other == a.h || other.resolved || other.value <= a.h.value || other.opt == nil {
				continue
			}
			conflict := false
			for key := range a.writes {
				if _, read := other.opt.reads[key]; read {
					conflict = true
					break
				}
			}
			if !conflict {
				for key := range a.reads {
					if _, wrote := other.writes[key]; wrote {
						conflict = true
						break
					}
				}
			}
			if conflict && (wait == nil || other.value > wait.value) {
				wait = other
			}
		}
		if wait != nil {
			s.stats.Deferrals++
			a.h.tr.Event(obs.StageDefer)
		}
		s.mu.Unlock()
		if wait == nil {
			return
		}
		select {
		case <-wait.done:
		case <-a.aborted:
			return
		}
	}
}

// shadowDone runs nothing; it returns the channel the shadow goroutine
// reports on. (The goroutine was started at fork time.)
func (h *txnHandle) shadowDone(sh *attempt) chan verdict {
	h.store.mu.Lock()
	defer h.store.mu.Unlock()
	if sh.report == nil {
		sh.report = make(chan verdict, 1)
	}
	return sh.report
}

// runAttempt executes a speculative shadow to completion and reports.
func (h *txnHandle) runAttempt(sh *attempt) {
	err := h.fn(&Tx{a: sh})
	committed := false
	if err == nil {
		committed, err = h.store.tryCommit(sh)
	}
	h.store.mu.Lock()
	if sh.report == nil {
		sh.report = make(chan verdict, 1)
	}
	h.store.mu.Unlock()
	sh.report <- verdict{err: err, committed: committed}
}

// tryCommit validates and installs an attempt's writes. It returns
// (false, nil) if the attempt read stale data (a conflicting transaction
// committed first); the caller falls back to its shadow or restarts. With
// group commit enabled the attempt joins the current flush batch instead
// of acquiring the latch itself. A successful commit is reported only
// after the commit log's Sync hook (if any) returns: the caller's ack
// implies durability under the configured fsync policy. A Sync failure
// returns (true, *SyncError) — installed, but never to be acknowledged.
func (s *Store) tryCommit(a *attempt) (bool, error) {
	if s.gc != nil {
		return s.gc.commit(a)
	}
	s.mu.Lock()
	s.stats.CommitBatches++
	ok := s.commitLocked(a)
	syncer, _ := s.cfg.CommitLog.(CommitSyncer)
	s.mu.Unlock()
	if met := s.cfg.Metrics; met != nil {
		// The per-commit path is a batch of one; FlushSeconds is left to
		// the group-commit path so this stays a single atomic add.
		met.BatchSize.Observe(1)
	}
	if ok && syncer != nil {
		if err := syncer.Sync(); err != nil {
			return true, &SyncError{Err: err}
		}
	}
	return ok, nil
}

// commitLocked is the commit critical section: validate the attempt's
// reads against committed state and install its writes. Caller holds s.mu.
func (s *Store) commitLocked(a *attempt) bool {
	h := a.h
	select {
	case <-a.aborted:
		return false
	default:
	}
	if h.resolved {
		return false // another shadow of this transaction already won
	}
	for key, ver := range a.reads {
		if s.committed[key].ver != ver {
			a.abortLocked(s)
			return false
		}
	}
	h.resolved = true
	h.result = a.result
	delete(s.active, h)
	if a.spec {
		s.stats.Promotions++
		h.tr.Event(obs.StagePromotion)
	}
	s.installLocked(a.writes, h.value, 0, nil)
	s.stats.Commits++
	if h.tr != nil && s.epochRep != nil && len(a.writes) > 0 {
		// The sink allocated this install's standalone epoch under the
		// latch we hold, so its newest epoch IS ours. Stamp it before
		// the install stage so the flight event carries it too.
		h.tr.SetEpoch(s.epochRep.LastEpoch())
	}
	h.tr.Event(obs.StageInstall)
	return true
}

// installLocked installs writes with bumped versions and broadcasts the
// commit: in-flight optimistic shadows that read what was written are
// aborted. Their speculative shadows (often gated on the committer) take
// over — the gate opens when the committing handle's done channel closes.
// epoch 0 is a standalone install (the sink stamps its own epoch);
// non-zero carries a cross-shard commit's pre-allocated epoch and
// participant set to a CrossCommitLog sink. Callers hold s.mu.
func (s *Store) installLocked(writes map[string][]byte, value float64, epoch uint64, shards []int) {
	if s.cfg.CommitLog != nil && len(writes) > 0 {
		if cl, ok := s.cfg.CommitLog.(CrossCommitLog); ok && epoch != 0 {
			cl.AppendCross(writes, value, epoch, shards)
		} else if vl, ok := s.cfg.CommitLog.(ValuedCommitLog); ok {
			vl.AppendValued(writes, value)
		} else {
			s.cfg.CommitLog.Append(writes)
		}
	}
	for key, val := range writes {
		s.committed[key] = versioned{val: val, ver: s.committed[key].ver + 1}
	}
	for other := range s.active {
		if other.resolved || other.opt == nil {
			continue
		}
		stale := false
		for key := range writes {
			if _, read := other.opt.reads[key]; read {
				stale = true
				break
			}
		}
		if stale {
			other.opt.abortLocked(s)
		}
	}
}

// Close marks the store closed; subsequent Updates fail. In-flight
// transactions drain normally.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
}
