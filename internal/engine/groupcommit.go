// Group commit: coalescing commit critical sections.
//
// Every commit of a Store must hold the store latch (s.mu) while it
// validates its read set and installs its writes. On the per-commit path
// that is one latch acquisition per commit attempt; under many concurrent
// connections the latch handoffs themselves become the hot path (Larson et
// al.'s observation that commit critical sections dominate once the engine
// is fast). Group commit batches them: committers enqueue their finished
// attempt with a flat-combining committer, the first enqueuer becomes the
// flush leader, gathers more commits for one flush window (or until the
// batch cap), then acquires the latch once and processes the whole batch
// under that single hold. Validation semantics are unchanged — each
// attempt in the batch validates against the state left by the attempts
// processed before it, exactly as if they had taken the latch back to
// back — only the number of latch acquisitions drops.
//
// The flush window is a latency/throughput trade: a commit waits up to
// Window for company. Tests inject the trigger instead of the clock:
// TriggerFlush wakes the gathering leader immediately, and PendingCommits
// exposes the queue depth, so coalescing behaviour is testable without
// timing sleeps.

package engine

import (
	"sort"
	"sync"
	"time"
)

// GroupCommit configures commit coalescing for a Store.
type GroupCommit struct {
	// Enabled turns group commit on. Off, every commit attempt acquires
	// the store latch itself.
	Enabled bool
	// Window is the longest a flush leader gathers commits before
	// flushing (default 100µs). Commits wait at most this long for
	// company.
	Window time.Duration
	// MaxBatch flushes early once this many commits are pending
	// (default 64).
	MaxBatch int
}

func (g *GroupCommit) defaults() {
	if g.Window <= 0 {
		g.Window = 100 * time.Microsecond
	}
	if g.MaxBatch <= 0 {
		g.MaxBatch = 64
	}
}

// commitReq is one finished attempt awaiting its commit verdict.
type commitReq struct {
	a    *attempt
	done chan verdict
}

// groupCommitter is the flat-combining commit queue of one Store.
type groupCommitter struct {
	s        *Store
	window   time.Duration
	maxBatch int

	// kick wakes the gathering leader early: followers send when the
	// batch cap is reached, TriggerFlush sends from tests.
	kick chan struct{}

	mu        sync.Mutex
	pending   []commitReq
	gathering bool // a leader is collecting the current batch
}

func newGroupCommitter(s *Store, cfg GroupCommit) *groupCommitter {
	cfg.defaults()
	return &groupCommitter{
		s:        s,
		window:   cfg.Window,
		maxBatch: cfg.MaxBatch,
		kick:     make(chan struct{}, 1),
	}
}

// commit enqueues a finished attempt and blocks until a flush delivers its
// verdict. The first enqueuer of a batch becomes the leader: it waits out
// the flush window (cut short by a kick) and then processes the whole
// batch under one latch acquisition. Followers just wait; a follower that
// fills the batch wakes the leader early.
func (g *groupCommitter) commit(a *attempt) (bool, error) {
	req := commitReq{a: a, done: make(chan verdict, 1)}
	g.mu.Lock()
	g.pending = append(g.pending, req)
	n := len(g.pending)
	leader := !g.gathering
	if leader {
		g.gathering = true
	}
	g.mu.Unlock()

	if leader {
		if n < g.maxBatch {
			t := time.NewTimer(g.window)
			select {
			case <-t.C:
			case <-g.kick:
			}
			t.Stop()
		}
		g.flush()
	} else if n >= g.maxBatch {
		select {
		case g.kick <- struct{}{}:
		default:
		}
	}
	v := <-req.done
	return v.committed, v.err
}

// flush takes the gathered batch and commits it under one store-latch
// acquisition. Requests enqueued after the batch is taken elect their own
// leader (the gathering flag is cleared in the same critical section), so
// no request is ever orphaned.
func (g *groupCommitter) flush() {
	g.mu.Lock()
	batch := g.pending
	g.pending = nil
	g.gathering = false
	// Drop a stale kick inside the critical section: until gathering is
	// cleared no new leader can exist, so any buffered kick was aimed at
	// this flush and is already satisfied. Draining it later could
	// swallow the next leader's batch-cap kick and leave a full batch
	// sleeping out its whole window.
	select {
	case <-g.kick:
	default:
	}
	g.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	s := g.s
	flushStart := time.Now()
	s.mu.Lock()
	// Starvation control: when a batch carries several conflicting
	// read-modify-writes of one key, only the first to validate commits —
	// the rest restart and meet again next flush, so plain FIFO order can
	// starve the same transaction round after round. Processing the
	// most-restarted transactions first (stable otherwise, so FIFO within
	// a generation) guarantees a transaction's wait is bounded: once it is
	// the oldest in its batch, its fresh re-read validates unless a commit
	// landed before this flush even started.
	sort.SliceStable(batch, func(i, j int) bool {
		return batch[i].a.h.attempts > batch[j].a.h.attempts
	})
	s.stats.CommitBatches++
	verdicts := make([]bool, len(batch))
	installed := false
	for i, req := range batch {
		verdicts[i] = s.commitLocked(req.a)
		installed = installed || verdicts[i]
	}
	syncer, _ := s.cfg.CommitLog.(CommitSyncer)
	s.mu.Unlock()
	// Durability rides the batch boundary: one Sync covers every commit of
	// the flush, and no committer learns its verdict before the log is
	// synced (the done channels are buffered, so delivery order is the only
	// thing deferred). A Sync failure converts every committed verdict of
	// the batch to an error: the writes are installed but must never be
	// acknowledged as durable.
	var syncErr error
	if installed && syncer != nil {
		if err := syncer.Sync(); err != nil {
			syncErr = &SyncError{Err: err}
		}
	}
	if met := s.cfg.Metrics; met != nil {
		met.BatchSize.Observe(int64(len(batch)))
		met.FlushSeconds.Observe(int64(time.Since(flushStart)))
	}
	for i, req := range batch {
		v := verdict{committed: verdicts[i]}
		if verdicts[i] {
			v.err = syncErr
		}
		req.done <- v
	}
}

// TriggerFlush wakes a gathering group-commit leader immediately instead
// of waiting out its flush window. It is the injected flush trigger for
// deterministic tests; a no-op when group commit is disabled. With no
// leader gathering, the kick is buffered and at worst shortens the next
// leader's window (each flush clears stale kicks).
func (s *Store) TriggerFlush() {
	if s.gc == nil {
		return
	}
	select {
	case s.gc.kick <- struct{}{}:
	default:
	}
}

// PendingCommits reports how many finished attempts are queued for the
// next group-commit flush (0 when group commit is disabled).
func (s *Store) PendingCommits() int {
	if s.gc == nil {
		return 0
	}
	s.gc.mu.Lock()
	defer s.gc.mu.Unlock()
	return len(s.gc.pending)
}
