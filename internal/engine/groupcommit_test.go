package engine

import (
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

// waitPending spins (no sleeps — the flush trigger is injected, not
// timed) until n commits are queued for the next flush.
func waitPending(t *testing.T, s *Store, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for s.PendingCommits() < n {
		if time.Now().After(deadline) {
			t.Fatalf("pending commits stuck at %d, want %d", s.PendingCommits(), n)
		}
		runtime.Gosched()
	}
}

// TestGroupCommitCoalesces is the deterministic coalescing test: with an
// effectively infinite window and batch cap, n concurrent commits park in
// the queue until the injected trigger fires, and the whole batch then
// commits under ONE latch acquisition — versus n on the per-commit path.
func TestGroupCommitCoalesces(t *testing.T) {
	const n = 8
	run := func(grouped bool) Stats {
		cfg := Config{}
		if grouped {
			cfg.GroupCommit = GroupCommit{Enabled: true, Window: time.Hour, MaxBatch: 1 << 20}
		}
		s := Open(cfg)
		defer s.Close()
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				key := fmt.Sprintf("k%d", i)
				if err := s.Update(func(tx *Tx) error { return tx.Set(key, []byte{1}) }); err != nil {
					t.Errorf("update %d: %v", i, err)
				}
			}(i)
		}
		if grouped {
			waitPending(t, s, n)
			s.TriggerFlush()
		}
		wg.Wait()
		return s.Stats()
	}

	grouped := run(true)
	if grouped.Commits != n {
		t.Fatalf("grouped commits = %d, want %d", grouped.Commits, n)
	}
	if grouped.CommitBatches != 1 {
		t.Errorf("grouped commit batches = %d, want 1 (single flush)", grouped.CommitBatches)
	}

	perCommit := run(false)
	if perCommit.Commits != n {
		t.Fatalf("per-commit commits = %d, want %d", perCommit.Commits, n)
	}
	if perCommit.CommitBatches != n {
		t.Errorf("per-commit commit batches = %d, want %d (one latch per commit)", perCommit.CommitBatches, n)
	}
	if grouped.CommitBatches >= perCommit.CommitBatches {
		t.Errorf("group commit did not cut latch acquisitions: %d vs %d",
			grouped.CommitBatches, perCommit.CommitBatches)
	}
}

// TestGroupCommitMaxBatchKicks: with a huge window, hitting the batch cap
// must wake the leader without any external trigger.
func TestGroupCommitMaxBatchKicks(t *testing.T) {
	const n = 4
	s := Open(Config{GroupCommit: GroupCommit{Enabled: true, Window: time.Hour, MaxBatch: n}})
	defer s.Close()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := fmt.Sprintf("k%d", i)
			if err := s.Update(func(tx *Tx) error { return tx.Set(key, []byte{1}) }); err != nil {
				t.Errorf("update %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait() // completes only if the cap kicked the leader
	st := s.Stats()
	if st.Commits != n {
		t.Fatalf("commits = %d, want %d", st.Commits, n)
	}
	if st.CommitBatches >= n {
		t.Errorf("commit batches = %d, want < %d (coalesced)", st.CommitBatches, n)
	}
}

// TestGroupCommitConflicts drives contended read-modify-writes through the
// group path with a real (short) window: correctness must be identical to
// the per-commit path — every increment lands exactly once.
func TestGroupCommitConflicts(t *testing.T) {
	s := Open(Config{GroupCommit: GroupCommit{Enabled: true, Window: 200 * time.Microsecond, MaxBatch: 8}})
	defer s.Close()
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				err := s.Update(func(tx *Tx) error {
					v, err := tx.Get("hot")
					if err != nil {
						return err
					}
					var n byte
					if len(v) > 0 {
						n = v[0]
					}
					return tx.Set("hot", []byte{n + 1})
				})
				if err != nil {
					t.Errorf("update: %v", err)
				}
			}
		}()
	}
	wg.Wait()
	v, ok := s.Get("hot")
	if !ok || len(v) == 0 || v[0] != workers*iters {
		t.Fatalf("hot = %v (ok=%v), want [%d]", v, ok, workers*iters)
	}
	st := s.Stats()
	if st.CommitBatches == 0 || st.Commits < workers*iters {
		t.Fatalf("stats = %+v", st)
	}
}
