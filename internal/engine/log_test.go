package engine

import (
	"strconv"
	"sync"
	"testing"
)

// recLog records appended write sets; Append runs under the store latch,
// so no locking of its own is needed for the engine's calls, but the
// test reads it after the fact.
type recLog struct {
	mu   sync.Mutex
	recs []map[string][]byte
}

func (l *recLog) Append(w map[string][]byte) {
	l.mu.Lock()
	l.recs = append(l.recs, w)
	l.mu.Unlock()
}

// TestCommitLogOrderMatchesState: replaying the commit log against a
// fresh map reproduces the store's committed state — the property
// replication log shipping rests on. Concurrent read-modify-writes force
// conflicts, so the log order is a real serialization order, not just
// arrival order.
func TestCommitLogOrderMatchesState(t *testing.T) {
	log := &recLog{}
	s := Open(Config{CommitLog: log})
	const workers, incs = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				err := s.Update(func(tx *Tx) error {
					v, err := tx.Get("n")
					if err != nil {
						return err
					}
					n := 0
					if len(v) > 0 {
						n, _ = strconv.Atoi(string(v))
					}
					return tx.Set("n", []byte(strconv.Itoa(n+1)))
				})
				if err != nil {
					panic(err)
				}
			}
		}()
	}
	wg.Wait()

	replay := make(map[string]string)
	for _, rec := range log.recs {
		for k, v := range rec {
			replay[k] = string(v)
		}
	}
	got, _ := s.Get("n")
	want := strconv.Itoa(workers * incs)
	if string(got) != want {
		t.Fatalf("committed n = %s, want %s", got, want)
	}
	if replay["n"] != want {
		t.Fatalf("log replay n = %s, want %s (log order is not the commit order)", replay["n"], want)
	}
	if len(log.recs) != workers*incs {
		t.Fatalf("log has %d records, want %d (one per commit)", len(log.recs), workers*incs)
	}
}
