// Cross-store commit hooks. A single Store resolves conflicts internally
// (shadows, broadcast commit); a sharded deployment (internal/shard) needs
// to commit one transaction atomically across several Stores. These hooks
// expose the minimal latch-and-validate surface that makes a multi-store
// optimistic commit possible without giving callers access to engine
// internals:
//
//	for each involved store, in deterministic (shard-index) order:
//	        st.LockCommit()
//	validate every read via st.ValidateLocked
//	if valid: st.ApplyLocked(writes) on each store
//	for each involved store: st.UnlockCommit()
//
// Locking the stores in a globally agreed order makes concurrent
// multi-store commits deadlock-free; holding every latch across validate
// and apply makes the commit atomic with respect to both other multi-store
// commits and this store's own live transactions (whose tryCommit takes
// the same latch).

package engine

// SnapshotRead returns the committed value of key and its version. Missing
// keys report version 0, which ValidateLocked/VersionLocked reproduce, so
// reads of absent keys validate correctly.
func (s *Store) SnapshotRead(key string) ([]byte, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.committed[key]
	if !ok {
		return nil, 0
	}
	out := make([]byte, len(v.val))
	copy(out, v.val)
	return out, v.ver
}

// LockCommit acquires the store's commit latch. While held, no transaction
// of this store can commit and no committed state changes. Callers must
// not invoke any non-*Locked method of the same store before UnlockCommit,
// and must lock multiple stores in a deterministic global order.
func (s *Store) LockCommit() { s.mu.Lock() }

// UnlockCommit releases the commit latch.
func (s *Store) UnlockCommit() { s.mu.Unlock() }

// GetLocked returns the committed value of key. The caller holds the
// commit latch.
func (s *Store) GetLocked(key string) ([]byte, bool) {
	v, ok := s.committed[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v.val))
	copy(out, v.val)
	return out, true
}

// ValidateLocked reports whether every read in reads still observes the
// committed version it saw. The caller holds the commit latch.
func (s *Store) ValidateLocked(reads map[string]uint64) bool {
	for key, ver := range reads {
		if s.committed[key].ver != ver {
			return false
		}
	}
	return true
}

// ApplyLocked installs writes with bumped versions and broadcast-aborts
// this store's in-flight optimistic shadows that read what was written —
// exactly the visibility a native commit has. It does not touch the
// store's Commits counter: cross-store transactions are counted once by
// the coordinator, not once per shard. The caller holds the commit latch.
func (s *Store) ApplyLocked(writes map[string][]byte) {
	s.installLocked(writes, 0, 0, nil)
}

// ApplyValuedLocked is ApplyLocked carrying the installing transaction's
// value through to a ValuedCommitLog — the cross-store committer uses it
// so multi-shard commits count toward each shard's pending-value like
// native ones. The caller holds the commit latch.
func (s *Store) ApplyValuedLocked(writes map[string][]byte, value float64) {
	s.installLocked(writes, value, 0, nil)
}

// ApplyCrossLocked is ApplyValuedLocked for one shard's part of a
// cross-shard commit: the install is stamped with the coordinator's
// pre-allocated epoch and the full participant set, so the commit-log
// record (WAL and replication) carries the atomicity metadata recovery
// and the replica apply barrier need. The caller holds the commit latch
// of every participant.
func (s *Store) ApplyCrossLocked(writes map[string][]byte, value float64, epoch uint64, shards []int) {
	s.installLocked(writes, value, epoch, shards)
}

// AppendIntentLocked writes a cross-shard intent record (epoch +
// participant set) to the store's commit log, if the sink is an
// IntentLogger — a WAL. Called before the epoch's data records, under
// this store's commit latch. A nil or non-durable sink is a no-op.
func (s *Store) AppendIntentLocked(epoch uint64, shards []int) error {
	if il, ok := s.cfg.CommitLog.(IntentLogger); ok {
		return il.AppendIntent(epoch, shards)
	}
	return nil
}

// AppendCrossDecision writes the epoch's single decision record to this
// store's (the coordinator's) commit log. It is called WITHOUT the commit
// latch, after every participant's intent and data records are durable —
// the decision is the commit point, so it must never become durable
// before the data it decides. No-op on non-durable sinks.
func (s *Store) AppendCrossDecision(epoch uint64) error {
	s.mu.Lock()
	il, _ := s.cfg.CommitLog.(IntentLogger)
	s.mu.Unlock()
	if il != nil {
		return il.AppendDecision(epoch)
	}
	return nil
}

// ReleaseCross un-gates the epoch's record for replication shipping on
// this store's sink, once the decision record is durable. No-op on
// non-durable sinks. Called without the commit latch.
func (s *Store) ReleaseCross(epoch uint64) {
	s.mu.Lock()
	il, _ := s.cfg.CommitLog.(IntentLogger)
	s.mu.Unlock()
	if il != nil {
		il.ReleaseCross(epoch)
	}
}

// RangeLocked calls fn for every committed key until fn returns false.
// The value slice is the store's internal buffer: fn must not mutate it
// and must copy (or serialize) before the latch is released. The caller
// holds the commit latch. Iteration order is unspecified. This is the
// snapshot surface checkpoints and SNAP bootstraps are built on.
func (s *Store) RangeLocked(fn func(key string, val []byte) bool) {
	for k, v := range s.committed {
		if !fn(k, v.val) {
			return
		}
	}
}

// SetCommitLog installs (or replaces) the store's commit log. Recovery
// opens the store with no log, replays history through ApplyLocked —
// unlogged, so a restart never re-appends its own past — and only then
// wires the log, from which point every install is recorded again.
func (s *Store) SetCommitLog(cl CommitLog) {
	s.mu.Lock()
	s.cfg.CommitLog = cl
	s.epochRep, _ = cl.(EpochReporter)
	s.mu.Unlock()
}

// NeedsCommitSync reports whether the store's commit log has a Sync
// hook — lets multi-store callers skip sync fan-out entirely on
// in-memory deployments.
func (s *Store) NeedsCommitSync() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.cfg.CommitLog.(CommitSyncer)
	return ok
}

// SyncCommitLog invokes the commit log's Sync hook, if it has one, and
// returns its error. Multi-store commit paths (cross-shard combiner,
// replica batch apply) call it after releasing the latches and before
// acknowledging, giving their installs the same durability boundary
// tryCommit gives native commits — and like tryCommit, a failure must
// convert the caller's verdicts to errors. Callers must NOT hold the
// commit latch.
func (s *Store) SyncCommitLog() error {
	s.mu.Lock()
	syncer, _ := s.cfg.CommitLog.(CommitSyncer)
	s.mu.Unlock()
	if syncer != nil {
		if err := syncer.Sync(); err != nil {
			return &SyncError{Err: err}
		}
	}
	return nil
}
