package engine

import (
	"encoding/binary"
	"sync"
	"testing"
)

// TestStashUnderContention pins the race-free result channel: 8 workers
// increment one hot counter, each stashing the value it installed. Because
// every commit bumps the counter by exactly one, the multiset of returned
// stashes must be a permutation of 1..N — a stale stash (from a losing
// shadow's execution) or a torn captured slice would duplicate or skip
// values.
func TestStashUnderContention(t *testing.T) {
	s := Open(Config{Mode: SCC2S})
	const workers, per = 8, 50
	results := make(chan uint64, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				res, err := s.UpdateResult(func(tx *Tx) error {
					v, err := tx.Get("hot")
					if err != nil {
						return err
					}
					var n uint64
					if len(v) == 8 {
						n = binary.BigEndian.Uint64(v)
					}
					n++
					var buf [8]byte
					binary.BigEndian.PutUint64(buf[:], n)
					if err := tx.Set("hot", buf[:]); err != nil {
						return err
					}
					tx.Stash(n)
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				n, ok := res.(uint64)
				if !ok {
					t.Errorf("stash type = %T", res)
					return
				}
				results <- n
			}
		}()
	}
	wg.Wait()
	close(results)
	seen := make(map[uint64]bool)
	for n := range results {
		if seen[n] {
			t.Fatalf("stash value %d returned twice: a losing shadow's result leaked", n)
		}
		seen[n] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("got %d distinct stashes, want %d", len(seen), workers*per)
	}
	for i := uint64(1); i <= workers*per; i++ {
		if !seen[i] {
			t.Fatalf("stash %d missing", i)
		}
	}
}

func TestStashNilWhenNeverStashed(t *testing.T) {
	s := Open(Config{})
	res, err := s.UpdateResult(func(tx *Tx) error {
		return tx.Set("k", []byte("v"))
	})
	if err != nil || res != nil {
		t.Fatalf("res=%v err=%v, want nil,nil", res, err)
	}
}
