#!/usr/bin/env bash
# Interactive-session e2e: start a live sccserve, drive an interactive
# TXN workload (sccload -interactive: one session per transaction, one
# round trip per operation with think time in between, pipelined
# sessions multiplexed per connection), and rely on sccload's built-in
# self-checks:
#   1. conservation — the balanced ± deltas of every committed session
#      must sum to zero over the run's keyspace (a torn or doubly
#      applied interactive commit breaks it), and
#   2. no lost updates — every committed session bumped its client's
#      audit counter exactly once.
# A second phase mixes one-shot UPD traffic into the same keyspace to
# check the two surfaces share one commit path without stepping on each
# other. Run via `make e2e-interactive`.
set -euo pipefail

ADDR=127.0.0.1:7098
RUN_ID=515151
KEYS=128
SCRATCH=$(mktemp -d)
SERVER_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

echo "e2e-interactive: building binaries"
go build -o "$SCRATCH/sccserve" ./cmd/sccserve
go build -o "$SCRATCH/sccload" ./cmd/sccload

wait_ready() {
    for _ in $(seq 1 100); do
        if "$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id 1 -keys 0 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "e2e-interactive: server on $ADDR never became ready" >&2
    exit 1
}

echo "e2e-interactive: starting server"
"$SCRATCH/sccserve" -addr "$ADDR" -shards 8 -gc-window 200us &
SERVER_PID=$!
wait_ready

echo "e2e-interactive: blocking interactive sessions with think time"
"$SCRATCH/sccload" -addr "$ADDR" -clients 8 -ops 40 -mix low -keys "$KEYS" \
    -interactive -think 1ms -run-id "$RUN_ID"

echo "e2e-interactive: pipelined concurrent sessions per connection"
"$SCRATCH/sccload" -addr "$ADDR" -clients 4 -ops 60 -mix two -keys "$KEYS" \
    -interactive -pipeline 4 -think 200us -run-id $((RUN_ID + 1))

echo "e2e-interactive: one-shot UPD traffic through the same commit path"
"$SCRATCH/sccload" -addr "$ADDR" -clients 8 -ops 60 -mix low -keys "$KEYS" \
    -pipeline 8 -run-id $((RUN_ID + 2))

echo "e2e-interactive: re-audit the interactive run's conservation"
"$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id "$RUN_ID" -mix low -keys "$KEYS"

echo "e2e-interactive: PASS"
