#!/usr/bin/env bash
# Kill-and-recover e2e: start a durable sccserve, drive a balanced load
# with a pinned run id, SIGKILL the server mid-flight of nothing (after
# acks), restart it over the same data directory, and assert that
#   1. conservation still holds over the run's keyspace (sccload
#      -verify-only re-sums the balanced deltas to zero), and
#   2. the server reports recovered_index > 0 (it really replayed the
#      WAL, it is not just an empty store agreeing that 0 == 0).
# Run via `make e2e-recover`.
set -euo pipefail

ADDR=127.0.0.1:7097
RUN_ID=424242
KEYS=128
SCRATCH=$(mktemp -d)
DATA="$SCRATCH/data"
SERVER_PID=

cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

echo "e2e-recover: building binaries"
go build -o "$SCRATCH/sccserve" ./cmd/sccserve
go build -o "$SCRATCH/sccload" ./cmd/sccload

wait_ready() {
    for _ in $(seq 1 100); do
        if "$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id 1 -keys 0 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "e2e-recover: server on $ADDR never became ready" >&2
    exit 1
}

echo "e2e-recover: starting durable server"
"$SCRATCH/sccserve" -addr "$ADDR" -shards 8 -data-dir "$DATA" \
    -fsync group -gc-window 200us -ckpt-every 512 &
SERVER_PID=$!
wait_ready

echo "e2e-recover: driving load (run-id $RUN_ID)"
"$SCRATCH/sccload" -addr "$ADDR" -clients 16 -ops 100 -mix low \
    -keys "$KEYS" -pipeline 8 -run-id "$RUN_ID"

echo "e2e-recover: SIGKILL the server"
kill -9 "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=

echo "e2e-recover: restarting over $DATA"
"$SCRATCH/sccserve" -addr "$ADDR" -shards 8 -data-dir "$DATA" \
    -fsync group -gc-window 200us -ckpt-every 512 &
SERVER_PID=$!
wait_ready

echo "e2e-recover: auditing recovered state"
"$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id "$RUN_ID" \
    -keys "$KEYS" -expect-recovered

echo "e2e-recover: PASS (conservation held across SIGKILL + recovery)"
