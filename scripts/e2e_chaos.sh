#!/usr/bin/env bash
# Chaos e2e: the crash-atomicity and sync-gating proof. Three rounds of
# injected faults (see internal/durable/fault.go for the SCC_FAULT_* env
# hooks) against a durable sccserve, each audited with sccload's
# conservation + acked-commit invariants:
#
#   1. kill -9 loop — SIGKILL the server mid-cross-shard-commit (fsync
#      stretched to widen the intent/decision window), restart, and
#      assert no acked commit was lost AND no multi-shard write was
#      half-recovered (the balanced deltas still sum to zero).
#   2. fsync failure — after N fsyncs every sync fails; the server must
#      fail-stop (no OK verdict an unsynced WAL cannot back), and the
#      restart must still hold every commit acked before the failure.
#   3. stalled replica — a replica applying with an injected per-install
#      stall is audited continuously while cross-shard load streams in:
#      the apply barrier means every replica read shows transfers
#      all-shards-at-once, so conservation holds mid-catch-up too.
#
# Round 2 also audits the flight recorder's black-box duty: the failing
# server must auto-dump its event journal to <data-dir>/flight before
# fail-stopping, boot reconciliation must dump again when it discards
# undecided epochs, and `sccload -events-merge` must join the dumps into
# one causal timeline. Set CHAOS_OUT to a directory to keep the dumps
# (CI uploads them as a workflow artifact).
#
# Run via `make e2e-chaos`.
set -euo pipefail

CHAOS_OUT=${CHAOS_OUT:-}

ADDR=127.0.0.1:7099
REPL_ADDR=127.0.0.1:7199
KEYS=128
SCRATCH=$(mktemp -d)
DATA="$SCRATCH/data"
SERVER_PID=
REPLICA_PID=

cleanup() {
    [ -n "$REPLICA_PID" ] && kill -9 "$REPLICA_PID" 2>/dev/null || true
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

echo "e2e-chaos: building binaries"
go build -o "$SCRATCH/sccserve" ./cmd/sccserve
go build -o "$SCRATCH/sccload" ./cmd/sccload

wait_ready() {
    local addr=$1
    for _ in $(seq 1 150); do
        if "$SCRATCH/sccload" -addr "$addr" -verify-only -run-id 1 -keys 0 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "e2e-chaos: server on $addr never became ready" >&2
    exit 1
}

kill_server() {
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=
}

SERVE_FLAGS=(-addr "$ADDR" -shards 8 -data-dir "$DATA"
    -fsync group -gc-window 200us -ckpt-every 256 -log-level warn)

# ---- Round 1: kill -9 mid-cross-shard-commit, three times over. -------
# The fsync delay stretches the window between a cross commit's round-1
# (intents + data durable) and round-2 (decision durable) syncs, so the
# SIGKILL lands torn commits that recovery must reconcile all-or-nothing.
for i in 1 2 3; do
    RUN_ID=$((7100 + i))
    echo "e2e-chaos: round 1.$i: start server, kill -9 mid-load (run-id $RUN_ID)"
    SCC_FAULT_FSYNC_DELAY_MS=2 "$SCRATCH/sccserve" "${SERVE_FLAGS[@]}" &
    SERVER_PID=$!
    wait_ready "$ADDR"

    "$SCRATCH/sccload" -addr "$ADDR" -clients 8 -ops 2000 -mix low \
        -keys "$KEYS" -pipeline 8 -run-id "$RUN_ID" \
        -acked-out "$SCRATCH/acked.$i" >"$SCRATCH/load.$i.log" 2>&1 &
    LOAD_PID=$!
    sleep "0.$((4 + i))"
    kill_server
    wait "$LOAD_PID" 2>/dev/null || true
    [ -f "$SCRATCH/acked.$i" ] || { echo "e2e-chaos: no acked file from load $i" >&2; exit 1; }

    echo "e2e-chaos: round 1.$i: restart + audit"
    "$SCRATCH/sccserve" "${SERVE_FLAGS[@]}" &
    SERVER_PID=$!
    wait_ready "$ADDR"
    "$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id "$RUN_ID" \
        -keys "$KEYS" -acked-in "$SCRATCH/acked.$i" -expect-recovered
    kill_server
done

# ---- Round 2: injected fsync failures force a fail-stop. --------------
# After 200 successful fsyncs every further sync fails. Verdicts are
# sync-gated, so the failure surfaces as ERR (never OK) and the server
# fail-stops; everything acked before the first failure must survive the
# restart.
RUN_ID=7110
echo "e2e-chaos: round 2: fsync failures after 200 syncs (run-id $RUN_ID)"
# The fsync delay widens the intent-durable/decision-durable window so
# the injected failure lands with cross-shard epochs in flight — the
# flight dumps below then carry the full intent/failure/discard story.
SCC_FAULT_FSYNC_ERR_AFTER=200 SCC_FAULT_FSYNC_DELAY_MS=2 \
    "$SCRATCH/sccserve" "${SERVE_FLAGS[@]}" \
    >"$SCRATCH/server.fsync.log" 2>&1 &
SERVER_PID=$!
wait_ready "$ADDR"
"$SCRATCH/sccload" -addr "$ADDR" -clients 8 -ops 500 -mix low \
    -keys "$KEYS" -pipeline 8 -run-id "$RUN_ID" \
    -acked-out "$SCRATCH/acked.fsync" >"$SCRATCH/load.fsync.log" 2>&1 || true
for _ in $(seq 1 100); do
    kill -0 "$SERVER_PID" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$SERVER_PID" 2>/dev/null; then
    echo "e2e-chaos: server survived failing fsyncs instead of fail-stopping" >&2
    exit 1
fi
wait "$SERVER_PID" 2>/dev/null || true
SERVER_PID=
grep -q "write-ahead log failed" "$SCRATCH/server.fsync.log" || {
    echo "e2e-chaos: fail-stop log does not mention the WAL error:" >&2
    cat "$SCRATCH/server.fsync.log" >&2
    exit 1
}
# The black box must have dumped itself before the fail-stop.
ls "$DATA"/flight/*-walfail.events >/dev/null 2>&1 || {
    echo "e2e-chaos: failing server left no walfail flight dump in $DATA/flight" >&2
    exit 1
}
echo "e2e-chaos: round 2: walfail flight dump written"

echo "e2e-chaos: round 2: restart + audit (acked before the fault must survive)"
"$SCRATCH/sccserve" "${SERVE_FLAGS[@]}" &
SERVER_PID=$!
wait_ready "$ADDR"
"$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id "$RUN_ID" \
    -keys "$KEYS" -acked-in "$SCRATCH/acked.fsync" -expect-recovered

# Merge every dump the fault sequence produced into one causal timeline.
# When boot reconciliation discarded undecided epochs it dumped too, and
# the merged view must then show the discard joined with the pre-crash
# intent on the same epoch (the Go test TestFlightDumpsAndMergedTimeline
# pins that join deterministically; here it rides real fault timing).
"$SCRATCH/sccload" -events-merge "$DATA"/flight/*.events >"$SCRATCH/timeline.txt"
grep -q "dump node=.*reason=walfail" "$SCRATCH/timeline.txt" || {
    echo "e2e-chaos: merged timeline lost the walfail dump:" >&2
    cat "$SCRATCH/timeline.txt" >&2
    exit 1
}
if ls "$DATA"/flight/*-reconcile.events >/dev/null 2>&1; then
    grep -q "reconcile_discard" "$SCRATCH/timeline.txt" || {
        echo "e2e-chaos: reconcile dump exists but no discard in the merged timeline" >&2
        exit 1
    }
    echo "e2e-chaos: round 2: merged timeline joins walfail + reconcile dumps"
else
    echo "e2e-chaos: round 2: merged timeline ok (no undecided epochs this run)"
fi
if [ -n "$CHAOS_OUT" ]; then
    mkdir -p "$CHAOS_OUT"
    cp "$DATA"/flight/*.events "$CHAOS_OUT"/ 2>/dev/null || true
    cp "$SCRATCH/timeline.txt" "$CHAOS_OUT"/ 2>/dev/null || true
fi

# ---- Round 3: stalled replica, audited mid-catch-up. ------------------
# The primary from round 2 keeps serving. The replica applies with a
# per-install stall, so it lags far behind while cross-shard transfers
# stream in; every conservation sample taken against it mid-catch-up
# must balance — the apply barrier forbids a transfer surfacing on one
# shard before the other.
RUN_ID=7120
echo "e2e-chaos: round 3: stalled replica under cross-shard load (run-id $RUN_ID)"
SCC_FAULT_APPLY_DELAY_MS=2 "$SCRATCH/sccserve" -addr "$REPL_ADDR" -shards 8 \
    -replica-of "$ADDR" -log-level warn &
REPLICA_PID=$!
wait_ready "$REPL_ADDR"

"$SCRATCH/sccload" -addr "$ADDR" -clients 8 -ops 150 -mix low \
    -keys "$KEYS" -pipeline 8 -run-id "$RUN_ID" -acked-out "$SCRATCH/acked.repl" &
LOAD_PID=$!
SAMPLES=0
while kill -0 "$LOAD_PID" 2>/dev/null; do
    "$SCRATCH/sccload" -addr "$REPL_ADDR" -verify-only -run-id "$RUN_ID" \
        -keys "$KEYS" >/dev/null || {
        echo "e2e-chaos: replica conservation broke mid-catch-up (half-visible cross commit)" >&2
        exit 1
    }
    SAMPLES=$((SAMPLES + 1))
done
wait "$LOAD_PID"
[ "$SAMPLES" -gt 0 ] || { echo "e2e-chaos: replica auditor never sampled" >&2; exit 1; }
echo "e2e-chaos: round 3: $SAMPLES mid-catch-up conservation samples balanced"

echo "e2e-chaos: round 3: waiting for the stalled replica to catch up"
CAUGHT_UP=
for _ in $(seq 1 600); do
    if "$SCRATCH/sccload" -addr "$REPL_ADDR" -verify-only -run-id "$RUN_ID" \
        -keys "$KEYS" -acked-in "$SCRATCH/acked.repl" >/dev/null 2>&1; then
        CAUGHT_UP=1
        break
    fi
    sleep 0.2
done
[ -n "$CAUGHT_UP" ] || { echo "e2e-chaos: replica never converged on the acked counts" >&2; exit 1; }
"$SCRATCH/sccload" -addr "$REPL_ADDR" -verify-only -run-id "$RUN_ID" \
    -keys "$KEYS" -acked-in "$SCRATCH/acked.repl"

echo "e2e-chaos: PASS (crash-atomic cross-shard commits, sync-gated verdicts, barrier-consistent replica)"
