#!/usr/bin/env bash
# Failover e2e: start a clustered primary+replica pair (semi-sync
# replication, short lease), SIGKILL the primary mid-load while sccload
# drives both addresses, and assert that
#   1. the replica promotes itself under fencing epoch 2 (TOPO),
#   2. the load rides the ERR not-primary redirects to completion with
#      conservation intact (sccload's own audit must PASS, and it must
#      report redirects followed > 0 — proof the kill landed mid-load),
#   3. the acked-commit ledger holds on the promoted node: no commit
#      acknowledged before the kill is missing (-verify-only -acked-in),
#   4. a restarted old primary fences itself off the higher epoch it
#      discovers during its boot probe: raw writes draw ERR not-primary
#      before a single write can be acknowledged.
# Run via `make e2e-failover`.
set -euo pipefail

ADDR_A=127.0.0.1:7098
ADDR_B=127.0.0.1:7099
RUN_ID=313131
KEYS=128
SCRATCH=$(mktemp -d)
PRIMARY_PID=
REPLICA_PID=

cleanup() {
    [ -n "$PRIMARY_PID" ] && kill -9 "$PRIMARY_PID" 2>/dev/null || true
    [ -n "$REPLICA_PID" ] && kill -9 "$REPLICA_PID" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

echo "e2e-failover: building binaries"
go build -o "$SCRATCH/sccserve" ./cmd/sccserve
go build -o "$SCRATCH/sccload" ./cmd/sccload

wait_ready() {
    for _ in $(seq 1 100); do
        if "$SCRATCH/sccload" -addr "$1" -verify-only -run-id 1 -keys 0 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "e2e-failover: server on $1 never became ready" >&2
    exit 1
}

# One request-reply line over a raw TCP connection (the sccload pool
# would follow the very redirect the fencing assertions are about).
ask() {
    local host=${1%%:*} port=${1##*:} reply
    exec 3<>"/dev/tcp/$host/$port" || return 1
    printf '%s\n' "$2" >&3
    IFS= read -r reply <&3 || true
    exec 3<&- 3>&-
    printf '%s\n' "$reply"
}

echo "e2e-failover: starting clustered primary ($ADDR_A) and replica ($ADDR_B)"
"$SCRATCH/sccserve" -addr "$ADDR_A" -shards 8 \
    -repl-sync -repl-sync-timeout 2s \
    -cluster-self "$ADDR_A" -cluster-peers "$ADDR_B" -cluster-lease 250ms &
PRIMARY_PID=$!
wait_ready "$ADDR_A"
"$SCRATCH/sccserve" -addr "$ADDR_B" -shards 8 -replica-of "$ADDR_A" \
    -cluster-self "$ADDR_B" -cluster-peers "$ADDR_A" -cluster-lease 250ms &
REPLICA_PID=$!
wait_ready "$ADDR_B"

echo "e2e-failover: driving load against $ADDR_A,$ADDR_B (run-id $RUN_ID)"
"$SCRATCH/sccload" -addr "$ADDR_A,$ADDR_B" -clients 16 -ops 800 -mix low \
    -keys "$KEYS" -run-id "$RUN_ID" -acked-out "$SCRATCH/acked" \
    >"$SCRATCH/load.out" 2>&1 &
LOAD_PID=$!

sleep 0.5
echo "e2e-failover: SIGKILL the primary mid-load"
kill -9 "$PRIMARY_PID"
wait "$PRIMARY_PID" 2>/dev/null || true
PRIMARY_PID=

echo "e2e-failover: waiting for the replica to promote itself"
promoted=
for _ in $(seq 1 150); do
    topo=$(ask "$ADDR_B" TOPO 2>/dev/null || true)
    case "$topo" in
    "OK role=primary epoch="*) promoted=$topo; break ;;
    esac
    sleep 0.1
done
if [ -z "$promoted" ]; then
    echo "e2e-failover: replica never promoted (last TOPO: ${topo:-none})" >&2
    exit 1
fi
echo "e2e-failover: promoted -> $promoted"

if ! wait "$LOAD_PID"; then
    echo "e2e-failover: load failed its own audit across the failover" >&2
    cat "$SCRATCH/load.out" >&2
    exit 1
fi
cat "$SCRATCH/load.out"
if ! grep -Eq 'redirects followed [1-9]' "$SCRATCH/load.out"; then
    echo "e2e-failover: load followed no redirects — the kill missed the load window" >&2
    exit 1
fi

echo "e2e-failover: auditing the acked-commit ledger on the promoted node"
"$SCRATCH/sccload" -addr "$ADDR_B" -verify-only -run-id "$RUN_ID" \
    -keys "$KEYS" -acked-in "$SCRATCH/acked"

echo "e2e-failover: restarting the old primary (must fence itself)"
"$SCRATCH/sccserve" -addr "$ADDR_A" -shards 8 \
    -repl-sync -repl-sync-timeout 2s \
    -cluster-self "$ADDR_A" -cluster-peers "$ADDR_B" -cluster-lease 250ms &
PRIMARY_PID=$!
wait_ready "$ADDR_A"

topo=$(ask "$ADDR_A" TOPO)
case "$topo" in
"OK role=fenced epoch="*) echo "e2e-failover: old primary fenced -> $topo" ;;
*)
    echo "e2e-failover: restarted old primary is not fenced: $topo" >&2
    exit 1
    ;;
esac
reply=$(ask "$ADDR_A" "ADD fencecheck 1")
case "$reply" in
"ERR not-primary"*) echo "e2e-failover: write rejected -> $reply" ;;
*)
    echo "e2e-failover: fenced old primary accepted a write: $reply" >&2
    exit 1
    ;;
esac

echo "e2e-failover: PASS (promotion, redirects, ledger, and fencing all held)"
