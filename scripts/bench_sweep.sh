#!/usr/bin/env bash
# Standard bench sweep: run sccload's four canonical scenarios against a
# fresh sccserve each, collect every run's -bench-out JSON, and merge
# them into one artifact (default BENCH.json). The checked-in
# BENCH_<pr>.json trajectory files are produced by this script, so a
# performance change reviews as an artifact diff. Run via
# `make bench-sweep [BENCH_OUT=BENCH_7.json]`.
set -euo pipefail

OUT=${1:-BENCH.json}
ADDR=127.0.0.1:7399
SCRATCH=$(mktemp -d)
SERVER_PID=

# The artifact stamps the core count the sweep ran on: bench numbers
# from different machines are only comparable at the same parallelism,
# and a GOMAXPROCS=1 run (cgroup-capped CI, taskset) serializes the
# server and the load generator onto one core — flag it loudly.
CPUS=${GOMAXPROCS:-$(nproc 2>/dev/null || echo 1)}
if [ "$CPUS" -le 1 ]; then
    echo "bench-sweep: WARNING: running with 1 CPU (GOMAXPROCS=${GOMAXPROCS:-unset}); throughput and latency are not comparable to multi-core artifacts" >&2
fi

cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
    rm -rf "$SCRATCH"
}
trap cleanup EXIT

echo "bench-sweep: building binaries"
go build -o "$SCRATCH/sccserve" ./cmd/sccserve
go build -o "$SCRATCH/sccload" ./cmd/sccload

wait_ready() {
    for _ in $(seq 1 100); do
        if "$SCRATCH/sccload" -addr "$ADDR" -verify-only -run-id 1 -keys 0 >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "bench-sweep: server on $ADDR never became ready" >&2
    exit 1
}

NAMES=()
FILES=()

# run <name> "<server flags>" "<load flags>"
run() {
    local name=$1 serve_flags=$2 load_flags=$3
    local file="$SCRATCH/$name.json"
    echo "bench-sweep: scenario $name"
    # shellcheck disable=SC2086
    "$SCRATCH/sccserve" -addr "$ADDR" -log-level warn $serve_flags &
    SERVER_PID=$!
    wait_ready
    # shellcheck disable=SC2086
    "$SCRATCH/sccload" -addr "$ADDR" $load_flags \
        -trace-sample 20 -bench-out "$file"
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=
    NAMES+=("$name")
    FILES+=("$file")
}

run pipelined-low \
    "-shards 16 -gc-window 200us" \
    "-clients 32 -ops 200 -mix low -pipeline 16"
run pipelined-high-contention \
    "-shards 16 -gc-window 200us" \
    "-clients 32 -ops 200 -mix high -pipeline 16"
run interactive-two-class \
    "-shards 16" \
    "-clients 32 -ops 100 -mix two -interactive -pipeline 8"
run single-shard-group-commit \
    "-shards 16 -gc-window 200us" \
    "-clients 32 -ops 200 -mix single -pipeline 16"
# Same load as pipelined-low but durable: the delta against it prices
# the WAL write path, and since PR 7 that includes the cross-shard
# intent + decision records (2PC round per multi-shard commit).
run durable-cross-intents \
    "-shards 16 -gc-window 200us -fsync group -data-dir $SCRATCH/dur-data" \
    "-clients 32 -ops 200 -mix low -pipeline 16"

{
    printf '{\n  "schema": "scc-bench-sweep/v1",\n  "cpus": %d,\n  "runs": [\n' "$CPUS"
    for i in "${!FILES[@]}"; do
        [ "$i" -gt 0 ] && printf ',\n'
        printf '    {\n      "name": "%s",\n      "result":\n' "${NAMES[$i]}"
        sed 's/^/      /' "${FILES[$i]}"
        printf '    }'
    done
    printf '\n  ]\n}\n'
} >"$OUT"

echo "bench-sweep: wrote $OUT"
