// Command bench_compare is the machine-checked bench regression gate:
// it diffs a freshly produced `make bench-sweep` artifact against a
// checked-in BENCH_<pr>.json baseline, scenario by scenario, and turns
// the comparison into an exit code CI can act on.
//
//	go run ./scripts/bench_compare.go -new BENCH.json
//	go run ./scripts/bench_compare.go -base BENCH_7.json -new BENCH.json
//
// Without -base the newest checked-in BENCH_<n>.json (highest n) is the
// baseline. Per scenario the gate compares committed-transaction
// throughput and p50/p99 latency: a p99 regression or throughput drop
// past the warn threshold (5%) prints a warning, past the fail
// threshold (15%) fails the run. Latency p50 is reported but never
// gates (it is the noisiest of the three under CI scheduling jitter).
// Artifacts from different core counts are incomparable, so when both
// artifacts carry a "cpus" stamp and they disagree — or either ran on a
// single core — failures downgrade to warnings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
)

type sweep struct {
	Schema string `json:"schema"`
	CPUs   int    `json:"cpus"`
	Runs   []struct {
		Name   string `json:"name"`
		Result struct {
			Throughput float64 `json:"throughput_txn_per_sec"`
			P50Ms      float64 `json:"latency_p50_ms"`
			P99Ms      float64 `json:"latency_p99_ms"`
			Committed  int64   `json:"committed"`
		} `json:"result"`
	} `json:"runs"`
}

func load(path string) (sweep, error) {
	var s sweep
	raw, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(raw, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != "scc-bench-sweep/v1" {
		return s, fmt.Errorf("%s: schema %q, want scc-bench-sweep/v1", path, s.Schema)
	}
	return s, nil
}

// newestBaseline picks the checked-in BENCH_<n>.json with the highest n.
func newestBaseline() (string, error) {
	paths, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	re := regexp.MustCompile(`^BENCH_(\d+)\.json$`)
	best, bestN := "", -1
	for _, p := range paths {
		m := re.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		if n, _ := strconv.Atoi(m[1]); n > bestN {
			best, bestN = p, n
		}
	}
	if best == "" {
		return "", fmt.Errorf("no checked-in BENCH_<n>.json baseline found")
	}
	return best, nil
}

func pct(base, now float64) float64 {
	if base == 0 {
		return 0
	}
	return (now - base) / base * 100
}

func main() {
	basePath := flag.String("base", "", "baseline artifact (default: newest checked-in BENCH_<n>.json)")
	newPath := flag.String("new", "BENCH.json", "fresh artifact to gate")
	warnPct := flag.Float64("warn", 5, "warn threshold: p99 regression or throughput drop, percent")
	failPct := flag.Float64("fail", 15, "fail threshold: p99 regression or throughput drop, percent")
	flag.Parse()

	if *basePath == "" {
		p, err := newestBaseline()
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench-compare:", err)
			os.Exit(2)
		}
		*basePath = p
	}
	base, err := load(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(2)
	}
	fresh, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench-compare:", err)
		os.Exit(2)
	}

	// Old artifacts predate the cpus stamp (0 when absent): compare
	// unconditionally but say so. Mismatched or single-core runs cannot
	// gate — CI cgroup caps would turn scheduling noise into failures.
	advisory := false
	if base.CPUs == 0 || fresh.CPUs == 0 {
		fmt.Printf("bench-compare: note: cpus stamp missing (base=%d new=%d)\n", base.CPUs, fresh.CPUs)
	} else if base.CPUs != fresh.CPUs {
		advisory = true
		fmt.Printf("bench-compare: cpus differ (base=%d new=%d); artifacts are not comparable, gating is advisory\n",
			base.CPUs, fresh.CPUs)
	}
	if base.CPUs == 1 || fresh.CPUs == 1 {
		advisory = true
		fmt.Println("bench-compare: single-core run (server and load share the core); gating is advisory")
	}

	baseRuns := make(map[string]int, len(base.Runs))
	for i, r := range base.Runs {
		baseRuns[r.Name] = i
	}
	names := make([]string, 0, len(fresh.Runs))
	for _, r := range fresh.Runs {
		names = append(names, r.Name)
	}
	sort.Strings(names)

	fmt.Printf("bench-compare: %s vs %s (warn %.0f%%, fail %.0f%%)\n", *newPath, *basePath, *warnPct, *failPct)
	failed := false
	seen := make(map[string]bool)
	for _, r := range fresh.Runs {
		seen[r.Name] = true
		bi, ok := baseRuns[r.Name]
		if !ok {
			fmt.Printf("  %-28s NEW (no baseline scenario)\n", r.Name)
			continue
		}
		b := base.Runs[bi].Result
		n := r.Result
		dTps := pct(b.Throughput, n.Throughput)
		dP50 := pct(b.P50Ms, n.P50Ms)
		dP99 := pct(b.P99Ms, n.P99Ms)
		verdict := "ok"
		if dP99 > *failPct || dTps < -*failPct {
			verdict = "FAIL"
			if advisory {
				verdict = "fail (advisory)"
			} else {
				failed = true
			}
		} else if dP99 > *warnPct || dTps < -*warnPct {
			verdict = "warn"
		}
		fmt.Printf("  %-28s tps %+6.1f%%  p50 %+6.1f%%  p99 %+6.1f%%  (%.0f -> %.0f tps, %.2f -> %.2f ms p99)  %s\n",
			r.Name, dTps, dP50, dP99, b.Throughput, n.Throughput, b.P99Ms, n.P99Ms, verdict)
	}
	for name := range baseRuns {
		if !seen[name] {
			fmt.Printf("  %-28s DROPPED (in baseline, missing from new artifact)\n", name)
			failed = true
		}
	}
	if failed {
		fmt.Println("bench-compare: FAIL")
		os.Exit(1)
	}
	fmt.Println("bench-compare: pass")
}
