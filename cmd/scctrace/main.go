// Command scctrace replays the paper's illustrative schedules (Figs. 1-2
// and 4-8) through the real protocol implementations and prints the event
// timeline: forks, block points, promotions, aborts and commits — the
// textual equivalent of the figures.
//
// Usage:
//
//	scctrace -fig 2b      # SCC resumes a shadow instead of restarting
//	scctrace -fig 1b      # the same schedule under OCC-BC (restart)
//	scctrace -fig 4|5|6|7|8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/occ"
	"repro/internal/rtdbs"
	"repro/internal/sim"
	"repro/internal/workload"
)

func r(p model.PageID) model.Op { return model.Op{Page: p} }
func w(p model.PageID) model.Op { return model.Op{Page: p, Write: true} }

const (
	pX model.PageID = 3
	pY model.PageID = 1
	pZ model.PageID = 2
)

type schedule struct {
	describe string
	ccm      rtdbs.CCM
	admit    func(admitAt func(at float64, id model.TxnID, opTime float64, ops []model.Op))
}

func fill(base int, n int) []model.Op {
	var ops []model.Op
	for i := 0; i < n; i++ {
		ops = append(ops, r(model.PageID(base+i)))
	}
	return ops
}

func schedules() map[string]schedule {
	kS := func(k int) rtdbs.CCM { return core.NewKS(k, core.LBFO) }
	return map[string]schedule{
		"1b": {
			describe: "Fig 1(b): OCC-BC — T2 read x before T1 commits; T1's broadcast commit RESTARTS T2 from scratch",
			ccm:      occ.NewBC(),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, []model.Op{w(pX), w(4)})
				at(0, 2, 1.0, []model.Op{r(pX), r(5)})
			},
		},
		"2a": {
			describe: "Fig 2(a): SCC, undeveloped conflict — T2 validates first; its shadow is discarded unused",
			ccm:      kS(2),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, []model.Op{w(pX), w(4), w(5)})
				at(0, 2, 0.5, []model.Op{r(pX), r(6), r(7)})
			},
		},
		"2b": {
			describe: "Fig 2(b): SCC, developed conflict — T1 commits first; T2's shadow is PROMOTED and resumes (no restart)",
			ccm:      kS(2),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, []model.Op{w(pX), w(4)})
				at(0, 2, 1.0, []model.Op{r(pX), r(5)})
			},
		},
		"4": {
			describe: "Fig 4: write-after-read conflict forks off the latest earlier shadow and re-executes to the new block point",
			ccm:      kS(4),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, append([]model.Op{r(pY), r(pZ), r(pX)}, fill(40, 3)...))
				at(0, 2, 2.3, []model.Op{w(pZ), w(50)})
				at(1.6, 3, 1.8, []model.Op{w(pX), w(51)})
			},
		},
		"5": {
			describe: "Fig 5: an earlier conflict with the same transaction replaces the existing shadow",
			ccm:      kS(3),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, append([]model.Op{r(pX), r(pY), r(pZ)}, fill(40, 5)...))
				at(0, 2, 3.2, []model.Op{w(pZ), w(pX), w(50)})
			},
		},
		"6": {
			describe: "Fig 6: LBFO — budget exhausted; a new earlier conflict replaces the latest-blocked shadow",
			ccm:      kS(3),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, append([]model.Op{r(pX), r(pY), r(pZ)}, fill(40, 5)...))
				at(0, 3, 2.5, []model.Op{w(pY), w(60), w(61), w(62)})
				at(0.4, 4, 3.1, []model.Op{w(pZ), w(71), w(72)})
				at(0.5, 2, 4.0, []model.Op{w(pX), w(73)})
			},
		},
		"7": {
			describe: "Fig 7: Commit Rule case 1 — the shadow waiting for the committer is promoted; exposed shadows abort",
			ccm:      kS(4),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, append([]model.Op{r(pX), r(pY), r(pZ)}, fill(40, 11)...))
				at(0, 3, 4.5, []model.Op{w(pX), w(60), w(61), w(62)})
				at(0, 2, 5.5, []model.Op{w(pZ), w(70)})
			},
		},
		"8": {
			describe: "Fig 8: Commit Rule case 2 — unaccounted conflict; the latest valid shadow is promoted instead",
			ccm:      kS(2),
			admit: func(at func(float64, model.TxnID, float64, []model.Op)) {
				at(0, 1, 1.0, append([]model.Op{r(pX), r(pY), r(pZ)}, fill(40, 9)...))
				at(0, 3, 2.5, []model.Op{w(pY), w(60), w(61), w(62), w(63)})
				at(0, 2, 4.1, []model.Op{w(pZ), w(70)})
			},
		},
	}
}

func main() {
	fig := flag.String("fig", "2b", "figure to replay: 1b 2a 2b 4 5 6 7 8 (or 'all')")
	flag.Parse()

	scheds := schedules()
	if *fig == "all" {
		for _, id := range []string{"1b", "2a", "2b", "4", "5", "6", "7", "8"} {
			replay(id, scheds[id])
		}
		return
	}
	sc, ok := scheds[*fig]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown figure %q\n", *fig)
		os.Exit(2)
	}
	replay(*fig, sc)
}

func replay(id string, sc schedule) {
	fmt.Printf("== %s ==\n", sc.describe)
	cfg := rtdbs.Config{
		Workload:      workload.Baseline(1, 1),
		Target:        100,
		CheckReads:    true,
		RecordHistory: true,
	}
	rt := rtdbs.New(cfg, sc.ccm)
	rt.Trace = func(at sim.Time, format string, args ...any) {
		fmt.Printf("  %6.2f  %s\n", float64(at), fmt.Sprintf(format, args...))
	}
	sc.admit(func(at float64, id model.TxnID, opTime float64, ops []model.Op) {
		cl := &model.Class{
			Name: "trace", NumOps: len(ops), MeanOpTime: opTime,
			SlackFactor: 2, Value: 100, PenaltyPerSlack: 1, Frequency: 1,
		}
		tx := &model.Txn{
			ID: id, Class: cl, Arrival: sim.Time(at),
			Deadline: sim.Time(at) + sim.Time(2*opTime*float64(len(ops))),
			Ops:      ops, OpTime: opTime,
		}
		rt.K.At(sim.Time(at), func() { rt.Admit(tx) })
	})
	rt.K.Run()
	if err := rt.History().Check(); err != nil {
		fmt.Fprintf(os.Stderr, "serializability violation: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  (history of %d commits verified serializable)\n\n", rt.History().Len())
}
