// Command sccbench regenerates the paper's evaluation (Figs. 13-15 of
// Bestavros & Braoudakis 1995) plus the ablations in DESIGN.md.
//
// Usage:
//
//	sccbench -exp fig13a            # one experiment, full scale
//	sccbench -exp all -quick       # every experiment, scaled down
//	sccbench -exp secondary        # the secondary-measures table
//	sccbench -exp fig14b -nochart  # table only
//
// Full-scale runs use the paper's parameters (4000 committed transactions
// per point, 3 seeds, rates 10..200 txn/s) and can take several minutes;
// -quick keeps the shape at a fraction of the cost.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (fig13a fig13b fig14a fig14b fig15a fig15b ablk ablpolicy abldelta secondary ablres all)")
	quick := flag.Bool("quick", false, "scaled-down run (fewer commits, seeds, rates)")
	nochart := flag.Bool("nochart", false, "suppress ASCII charts")
	rate := flag.Float64("rate", 100, "arrival rate for -exp secondary")
	flag.Parse()

	switch *exp {
	case "secondary":
		runSecondary(*rate, *quick)
		return
	case "ablres":
		runResources(*rate, *quick)
		return
	case "all":
		for _, id := range harness.ExperimentIDs() {
			runOne(id, *quick, *nochart)
		}
		runSecondary(*rate, *quick)
		runResources(*rate, *quick)
		return
	default:
		if _, ok := harness.Experiments()[*exp]; !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		runOne(*exp, *quick, *nochart)
	}
}

func runOne(id string, quick, nochart bool) {
	e := harness.Experiments()[id]
	fmt.Printf("== %s: %s ==\n", e.ID, e.Title)
	fmt.Printf("paper: %s\n\n", e.Paper)
	start := time.Now()
	res := e.Run(quick)
	fmt.Print(res.Table())
	if !nochart {
		fmt.Println()
		fmt.Print(res.Chart())
	}
	fmt.Printf("(%s in %.1fs)\n\n", mode(quick), time.Since(start).Seconds())
}

func runResources(rate float64, quick bool) {
	fmt.Printf("== ablres: finite resources (the paper assumes an infinite pool) ==\n\n")
	rows := harness.ResourceAblation(rate, []int{0, 60, 40, 30, 25}, quick)
	fmt.Print(harness.ResourceTable(rows, rate))
	fmt.Println("scarce servers make speculation's redundant work expensive;")
	fmt.Println("abundance is where SCC (and OCC) pull ahead — the paper's Sec. 1 argument.")
	fmt.Println()
}

func runSecondary(rate float64, quick bool) {
	fmt.Printf("== secondary: restarts / wasted work / shadow counters ==\n\n")
	rows := harness.Secondary(rate, 2000, quick)
	fmt.Print(harness.SecondaryTable(rows, rate))
	fmt.Println()
}

func mode(quick bool) string {
	if quick {
		return "quick mode"
	}
	return "full scale"
}
