// Command sccserve serves a sharded SCC key-value store over TCP.
//
//	sccserve -addr :7070 -shards 16 -mode scc-2s -concurrency 64
//
// The store hash-partitions keys across independent SCC engines
// (single-shard transactions run natively under speculative concurrency
// control; multi-shard transactions commit atomically in deterministic
// shard order) behind a value-cognizant admission queue that dispatches
// the highest expected-value waiter first and sheds transactions whose
// value functions have crossed zero. See internal/server for the wire
// protocol; cmd/sccload is the matching load generator.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", 16, "number of store partitions")
	mode := flag.String("mode", "scc-2s", "concurrency control per shard: scc-2s | occ-bc")
	concurrency := flag.Int("concurrency", 64, "admission slots (transactions in the engine at once)")
	queue := flag.Int("queue", 1024, "admission queue bound; overflow sheds the lowest-value waiter")
	gcWindow := flag.Duration("gc-window", 0, "group-commit flush window per shard (0 = group commit off); commits wait at most this long to share one latch acquisition")
	gcBatch := flag.Int("gc-batch", 64, "group-commit batch cap: flush early once this many commits are pending")
	pipelineDepth := flag.Int("pipeline-depth", 128, "max concurrently dispatched REQ-framed requests per connection")
	statsEvery := flag.Duration("stats", 0, "log engine stats at this interval (0 = off)")
	flag.Parse()

	var m engine.Mode
	switch strings.ToLower(*mode) {
	case "scc-2s", "scc2s", "scc":
		m = engine.SCC2S
	case "occ-bc", "occbc", "occ":
		m = engine.OCCBC
	default:
		log.Fatalf("sccserve: unknown -mode %q (want scc-2s or occ-bc)", *mode)
	}

	srv := server.New(server.Config{
		Shards: *shards,
		Mode:   m,
		Admission: server.AdmissionConfig{
			MaxConcurrent: *concurrency,
			MaxQueue:      *queue,
		},
		GroupCommit: engine.GroupCommit{
			Enabled:  *gcWindow > 0,
			Window:   *gcWindow,
			MaxBatch: *gcBatch,
		},
		PipelineDepth: *pipelineDepth,
	})

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sccserve: %v", err)
	}
	gc := "off"
	if *gcWindow > 0 {
		gc = fmt.Sprintf("window=%s batch=%d", *gcWindow, *gcBatch)
	}
	log.Printf("sccserve: %s serving %d shards on %s (admission: %d slots, queue %d; group commit %s)",
		m, *shards, lis.Addr(), *concurrency, *queue, gc)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Store().Stats()
				ad := srv.Admission().Stats()
				log.Printf("sccserve: commits=%d (fast=%d cross=%d) restarts=%d forks=%d promotions=%d admitted=%d shed=%d depth=%d",
					st.TotalCommits(), st.FastPath, st.CrossCommits,
					st.Engine.Restarts+st.CrossRestarts, st.Engine.Forks,
					st.Engine.Promotions, ad.Admitted, ad.Shed, ad.Depth)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	select {
	case s := <-sig:
		log.Printf("sccserve: %v, shutting down", s)
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			log.Fatalf("sccserve: %v", err)
		}
	}
	st := srv.Store().Stats()
	fmt.Printf("final: commits=%d fast=%d cross=%d cross_restarts=%d promotions=%d\n",
		st.TotalCommits(), st.FastPath, st.CrossCommits, st.CrossRestarts, st.Engine.Promotions)
}
