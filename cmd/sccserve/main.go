// Command sccserve serves a sharded SCC key-value store over TCP.
//
//	sccserve -addr :7070 -shards 16 -mode scc-2s -concurrency 64
//	sccserve -addr :7070 -shards 16 -data-dir ./data -fsync group
//	sccserve -addr :7071 -shards 16 -replica-of 127.0.0.1:7070
//	sccserve -addr :7071 -replica-of 127.0.0.1:7070 \
//	  -cluster-self 127.0.0.1:7071 -cluster-peers 127.0.0.1:7070,127.0.0.1:7072
//
// The store hash-partitions keys across independent SCC engines behind a
// value-cognizant admission queue. A primary (default) keeps per-shard
// commit logs and serves REPL/ACK replication subscriptions; started with
// -replica-of it becomes a read replica: it bootstraps from a SNAP
// snapshot, streams the primary's commit log into its own store, and
// serves snapshot reads, shedding reads whose value functions would cross
// zero before it catches up. With -data-dir the server is durable: every
// commit is written to a per-shard WAL before it is acknowledged (fsync
// policy per -fsync), shards are checkpointed highest-pending-value
// first, and a restart recovers checkpoint + WAL suffix — a SIGKILL
// loses nothing acknowledged.
//
// With -cluster-self and -cluster-peers the server joins the failover
// monitor: replicas heartbeat the primary and, when the lease expires,
// the most-caught-up replica promotes itself under a freshly minted
// fencing epoch; a deposed primary fences itself (dumping its flight
// ring like a WAL failure) and redirects clients to the new primary via
// ERR not-primary. -repl-sync makes the primary semi-synchronous: each
// OK is held until a replica acked the commit's log records, degrading
// to async past -repl-sync-timeout.
//
// See docs/PROTOCOL.md for the wire protocol
// and docs/ARCHITECTURE.md for the system layout; cmd/sccload is the
// matching load generator.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the -metrics-addr mux
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/durable"
	"repro/internal/engine"
	"repro/internal/repl"
	"repro/internal/server"
)

// parseLogLevel maps the -log-level flag onto a slog.Level.
func parseLogLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown -log-level %q (want debug, info, warn, or error)", s)
}

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	shards := flag.Int("shards", 16, "number of store partitions")
	mode := flag.String("mode", "scc-2s", "concurrency control per shard: scc-2s | occ-bc")
	concurrency := flag.Int("concurrency", 64, "admission slots (transactions in the engine at once)")
	queue := flag.Int("queue", 1024, "admission queue bound; overflow sheds the lowest-value waiter")
	tenantBudget := flag.Float64("tenant-budget", 0, "per-tenant admitted-value budget in value/sec over a rolling 1s window; requests carrying tenant= from a tenant over budget are shed (0 = off)")
	gcWindow := flag.Duration("gc-window", 0, "group-commit flush window per shard (0 = group commit off); commits wait at most this long to share one latch acquisition")
	gcBatch := flag.Int("gc-batch", 64, "group-commit batch cap: flush early once this many commits are pending")
	pipelineDepth := flag.Int("pipeline-depth", 128, "max concurrently dispatched REQ-framed requests per connection")
	replicaOf := flag.String("replica-of", "", "primary address to replicate from; makes this server a read replica")
	replLagBudget := flag.Duration("repl-lag-budget", 50*time.Millisecond, "replica: estimated catch-up time tolerated before lag-based value shedding")
	replLog := flag.Bool("repl-log", true, "keep per-shard commit logs and serve REPL subscriptions")
	replRetain := flag.Uint64("repl-retain", 65536, "in-memory commit-log retention per shard: records acked by every subscriber are trimmed past this many (0 = no retention bound; checkpoints on a durable server still trim; trimmed joiners bootstrap via SNAP)")
	replSnapshot := flag.Bool("repl-snapshot", true, "replica: bootstrap via SNAP snapshot + log suffix instead of replaying the primary's log from index 1")
	dataDir := flag.String("data-dir", "", "durability directory: per-shard WAL + checkpoints, recovered on boot (empty = in-memory only)")
	fsync := flag.String("fsync", "group", "WAL fsync policy: always (per commit) | group (per commit batch, rides -gc-window) | off (OS page cache only)")
	ckptEvery := flag.Int("ckpt-every", 4096, "checkpoint a shard after this many WAL records, highest pending-value shard first (0 = only on the CKPT verb)")
	txnIdle := flag.Duration("txn-idle", 30*time.Second, "reap interactive TXN sessions with no operation for this long (negative = no idle cap — an abandoned no-deadline session then pins its admission slot; value zero-crossing reaping always runs)")
	statsEvery := flag.Duration("stats", 0, "log engine stats at this interval (0 = off)")
	flightSample := flag.Int("flight-sample", 0, "flight recorder lifecycle sampling: 1-in-N untraced requests stamp their stages into the EVENTS ring (trace=1 requests and durability/replication/shed events always record; 0 = default 8, 1 = every request)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address serving GET /metrics (Prometheus text exposition of the same registry as the METRICS wire verb) and /debug/pprof (empty = off)")
	logLevel := flag.String("log-level", "info", "structured-log verbosity on stderr: debug | info | warn | error")
	resumeFile := flag.String("repl-resume", "", "replica: file persisting the primary's per-shard applied indices so a restart resumes the stream instead of re-bootstrapping via SNAP (default <data-dir>/replica.resume when -data-dir is set)")
	clusterSelf := flag.String("cluster-self", "", "this node's advertised client address, as peers should dial it; enables the cluster failover monitor (lease heartbeats, elections, fencing epochs)")
	clusterPeers := flag.String("cluster-peers", "", "comma-separated client addresses of the other cluster members")
	clusterLease := flag.Duration("cluster-lease", 750*time.Millisecond, "failover lease: how long the primary may go unreachable before replicas run an election")
	replSync := flag.Bool("repl-sync", false, "primary: semi-synchronous replication — hold each commit's OK until a replica acknowledged its log records (degrades to async past -repl-sync-timeout; counted in STATS repl_sync_degraded)")
	replSyncTimeout := flag.Duration("repl-sync-timeout", 5*time.Second, "with -repl-sync: longest a verdict waits for a replica ack before degrading to asynchronous")
	flag.Parse()

	lvl, err := parseLogLevel(*logLevel)
	if err != nil {
		log.Fatalf("sccserve: %v", err)
	}
	// All operational logging goes to stderr via slog; stdout stays
	// reserved for the machine-parsed "final:" summary line. Note
	// SetDefault also reroutes the stdlib log package through this
	// handler at INFO — anything that must survive -log-level warn (the
	// fail-stop path above all) has to log at ERROR explicitly.
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})))
	fatal := func(msg string, args ...any) {
		slog.Error(msg, args...)
		os.Exit(1)
	}

	var m engine.Mode
	switch strings.ToLower(*mode) {
	case "scc-2s", "scc2s", "scc":
		m = engine.SCC2S
	case "occ-bc", "occbc", "occ":
		m = engine.OCCBC
	default:
		fatal("sccserve: unknown -mode (want scc-2s or occ-bc)", "mode", *mode)
	}

	fsyncPolicy, err := durable.ParseFsyncPolicy(*fsync)
	if err != nil {
		fatal("sccserve: bad -fsync", "err", err)
	}
	var gate *repl.LagGate
	if *replicaOf != "" {
		gate = repl.NewLagGate(*shards, *replLagBudget, 0)
	}
	// The cluster state must exist before the server opens: the fenced
	// commit-log sinks are installed at Open against the boot epoch.
	var cstate *cluster.State
	if *clusterSelf != "" {
		var peers []string
		for _, p := range strings.Split(*clusterPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		cstate = cluster.NewState(*clusterSelf, peers)
		if *replicaOf == "" {
			if err := cstate.BecomePrimary(1); err != nil {
				fatal("sccserve: cluster", "err", err)
			}
		} else {
			cstate.SetReplica(*replicaOf)
		}
	} else if *clusterPeers != "" {
		fatal("sccserve: -cluster-peers needs -cluster-self (this node's advertised address)")
	}
	// Fail-stop on a broken WAL, synchronously: the durability manager
	// invokes this the moment a sync fails, after the failing batch's
	// verdicts have already been converted to ERR in-line — so no OK ever
	// races the fault, and the process dies instead of accumulating
	// acknowledged-but-non-durable commits. (This replaces the old
	// once-a-second Err() poll, whose window let thousands of lying acks
	// through between fault and detection.)
	onWALError := func(err error) {
		fatal("sccserve: write-ahead log failed, refusing to acknowledge non-durable commits", "err", err)
	}
	srv, err := server.Open(server.Config{
		Shards: *shards,
		Mode:   m,
		Admission: server.AdmissionConfig{
			MaxConcurrent: *concurrency,
			MaxQueue:      *queue,
			TenantBudget:  *tenantBudget,
		},
		GroupCommit: engine.GroupCommit{
			Enabled:  *gcWindow > 0,
			Window:   *gcWindow,
			MaxBatch: *gcBatch,
		},
		PipelineDepth: *pipelineDepth,
		Repl: server.ReplOptions{
			Primary:     *replLog,
			Gate:        gate,
			Retain:      *replRetain,
			SyncAcks:    *replSync,
			SyncTimeout: *replSyncTimeout,
		},
		Cluster:      cstate,
		Txn:          server.TxnConfig{MaxIdle: *txnIdle},
		FlightSample: *flightSample,
		Durable: durable.Options{
			Dir:       *dataDir,
			Fsync:     fsyncPolicy,
			CkptEvery: *ckptEvery,
			OnError:   onWALError,
		},
	})
	if err != nil {
		fatal("sccserve: open", "err", err)
	}
	// The flight recorder's node name joins dumps from different
	// processes in one merged timeline, so make it the listen address.
	srv.Flight().SetNode(strings.ReplaceAll(*addr, " ", "_"))
	if d := srv.Durable(); d != nil {
		slog.Info("sccserve: durable", "dir", *dataDir, "fsync", fsyncPolicy.String(),
			"ckpt_every", *ckptEvery, "recovered_records", d.RecoveredIndex())
	}

	// rep is the live replication stream; the failover hooks swap it (a
	// promotion consumes it, a follow re-points it), so access goes
	// through repMu. takeRep detaches it for a consumer.
	var repMu sync.Mutex
	var rep *repl.Replica
	takeRep := func() *repl.Replica {
		repMu.Lock()
		defer repMu.Unlock()
		r := rep
		rep = nil
		return r
	}
	startRepl := func(primary string) error {
		resume := *resumeFile
		if resume == "" && *dataDir != "" {
			resume = filepath.Join(*dataDir, "replica.resume")
		}
		r, err := repl.StartReplica(repl.ReplicaConfig{
			Primary:    primary,
			Store:      srv.Store(),
			Gate:       gate,
			Snapshot:   *replSnapshot,
			ResumePath: resume,
			Metrics:    server.NewReplicaMetrics(srv.Metrics()),
			Flight:     srv.Flight().Repl(),
		})
		if err != nil {
			return err
		}
		repMu.Lock()
		rep = r
		repMu.Unlock()
		go func() {
			<-r.Done()
			if err := r.Err(); err != nil {
				slog.Warn("sccserve: replication stream ended; serving frozen snapshot", "err", err)
			}
		}()
		return nil
	}
	if *replicaOf != "" {
		if err := startRepl(*replicaOf); err != nil {
			fatal("sccserve: replication", "err", err)
		}
		defer func() {
			if r := takeRep(); r != nil {
				r.Close()
			}
		}()
	}
	if cstate != nil {
		// Elections rank candidates by catch-up position, read straight
		// off the replication stream.
		cstate.SetProgress(func() (uint64, uint64) {
			repMu.Lock()
			r := rep
			repMu.Unlock()
			if r == nil {
				return 0, 0
			}
			var mark, sum uint64
			for _, m := range r.Watermarks() {
				if m > mark {
					mark = m
				}
			}
			for _, a := range r.Applied() {
				sum += a
			}
			return mark, sum
		})
	}

	if *metricsAddr != "" {
		// /metrics joins net/http/pprof's /debug/pprof/* handlers on the
		// default mux: one diagnostic listener, kept off the data port.
		http.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			srv.Metrics().Expose(w)
		})
		// /debug/events serves the flight recorder's retained window in
		// the same dump format the fault paths write to <data-dir>/flight.
		http.HandleFunc("/debug/events", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := srv.Flight().WriteTo(w, "http"); err != nil {
				slog.Warn("sccserve: /debug/events", "err", err)
			}
		})
		mlis, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal("sccserve: metrics listener", "err", err)
		}
		slog.Info("sccserve: metrics", "addr", mlis.Addr().String())
		go func() {
			if err := http.Serve(mlis, nil); err != nil {
				slog.Error("sccserve: metrics listener failed", "err", err)
			}
		}()
	}

	lis, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("sccserve: listen", "err", err)
	}
	gc := "off"
	if *gcWindow > 0 {
		gc = fmt.Sprintf("window=%s batch=%d", *gcWindow, *gcBatch)
	}
	role := "primary"
	if *replicaOf != "" {
		role = fmt.Sprintf("replica of %s (lag budget %s)", *replicaOf, *replLagBudget)
	}
	if cstate != nil {
		role += fmt.Sprintf(" [clustered self=%s peers=%d lease=%s epoch=%d]",
			*clusterSelf, len(cstate.Peers()), *clusterLease, cstate.Epoch())
	}
	slog.Info("sccserve: serving", "mode", m.String(), "shards", *shards, "addr", lis.Addr().String(),
		"role", role, "slots", *concurrency, "queue", *queue, "group_commit", gc)

	if *statsEvery > 0 {
		go func() {
			for range time.Tick(*statsEvery) {
				st := srv.Store().Stats()
				ad := srv.Admission().Stats()
				slog.Info("sccserve: stats",
					"commits", st.TotalCommits(), "fast", st.FastPath, "cross", st.CrossCommits,
					"restarts", st.Engine.Restarts+st.CrossRestarts, "forks", st.Engine.Forks,
					"promotions", st.Engine.Promotions, "admitted", ad.Admitted, "shed", ad.Shed, "depth", ad.Depth)
			}
		}()
	}

	// dumpFlight pulls the flight recorder's retained window: to
	// <data-dir>/flight when durable, stderr otherwise. Shared by the
	// operator's SIGQUIT pull and the automatic dump on demotion.
	dumpFlight := func(reason string) {
		if *dataDir != "" {
			if path, err := srv.Flight().DumpDir(filepath.Join(*dataDir, "flight"), reason); err != nil {
				slog.Error("sccserve: flight dump failed", "err", err)
			} else {
				slog.Info("sccserve: flight dump", "path", path)
			}
		} else if err := srv.Flight().WriteTo(os.Stderr, reason); err != nil {
			slog.Error("sccserve: flight dump failed", "err", err)
		}
	}

	// SIGQUIT is the operator's black-box pull: dump the flight
	// recorder's retained window and keep serving (unlike the Go
	// runtime's default stack-dump-and-exit, which SIGABRT still gives).
	quit := make(chan os.Signal, 1)
	signal.Notify(quit, syscall.SIGQUIT)
	go func() {
		for range quit {
			dumpFlight("sigquit")
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)

	// The failover monitor starts between listen and serve: the listener
	// already exists (early connections queue in the accept backlog), and
	// Start's synchronous boot probe runs before the first write is
	// served — a restarted old primary discovers the higher fencing epoch
	// and fences itself before it can acknowledge anything.
	if cstate != nil {
		node := cluster.NewNode(cluster.Config{
			State: cstate,
			Lease: *clusterLease,
			Hooks: cluster.Hooks{
				Promote: func(epoch uint64) error {
					if err := srv.Promote(takeRep(), epoch); err != nil {
						return err
					}
					slog.Warn("sccserve: promoted to primary", "epoch", epoch)
					return nil
				},
				Follow: func(primary string) error {
					if r := takeRep(); r != nil {
						r.Close()
					}
					slog.Info("sccserve: following new primary", "primary", primary)
					return startRepl(primary)
				},
				Demote: func(epoch uint64, primary string) {
					// The state already flipped to fenced; this is the
					// black-box moment — record it like a WAL failure.
					slog.Error("sccserve: deposed by higher fencing epoch; fenced",
						"epoch", epoch, "primary", primary)
					srv.Demote(epoch, primary)
					dumpFlight("demote")
				},
				Logf: func(format string, args ...any) {
					slog.Info(fmt.Sprintf(format, args...))
				},
			},
		})
		node.Start()
		defer node.Close()
	}
	go func() { done <- srv.Serve(lis) }()

	select {
	case s := <-sig:
		slog.Info("sccserve: shutting down", "signal", s.String())
		srv.Close()
		<-done
	case err := <-done:
		if err != nil {
			fatal("sccserve: serve", "err", err)
		}
	}
	st := srv.Store().Stats()
	fmt.Printf("final: commits=%d fast=%d cross=%d cross_restarts=%d promotions=%d\n",
		st.TotalCommits(), st.FastPath, st.CrossCommits, st.CrossRestarts, st.Engine.Promotions)
}
