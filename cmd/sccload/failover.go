// Failover-aware dialing for sccload: -addr accepts a comma-separated
// list of cluster members, and the per-round-trip load path follows the
// servers' ERR not-primary redirects — re-pointing every worker at the
// new primary when a replica promotes mid-run — instead of booking them
// as errors. Redirects followed and connections re-dialed are counted
// and reported in the run summary, so a failover run shows exactly how
// much client-visible churn the promotion caused.
package main

import (
	"errors"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server/client"
)

// retryBudget bounds how long one transaction keeps chasing the primary
// across redirects, elections, and dead connections before its error is
// surfaced. It must comfortably cover a lease expiry plus catch-up
// replay (default lease 750ms; e2e runs use shorter ones).
const retryBudget = 20 * time.Second

// addrPool is the shared view of the cluster across all load workers:
// the -addr list plus the index of the member currently believed to be
// primary. A redirect observed by any worker re-points the whole pool,
// so the rest stop burning a round trip each on the deposed node.
type addrPool struct {
	mu    sync.Mutex
	addrs []string
	cur   int

	redirects atomic.Int64 // ERR not-primary redirects followed
	reconns   atomic.Int64 // transport failures survived by re-dialing
}

func newAddrPool(list string) *addrPool {
	p := &addrPool{}
	for _, a := range strings.Split(list, ",") {
		if a = strings.TrimSpace(a); a != "" {
			p.addrs = append(p.addrs, a)
		}
	}
	return p
}

// multi reports whether failover handling is active: with a single
// address there is nowhere to redirect to, and the classic
// fail-fast behavior (which the chaos harness depends on) is kept.
func (p *addrPool) multi() bool { return len(p.addrs) > 1 }

// primary returns the member currently believed to be primary.
func (p *addrPool) primary() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addrs[p.cur]
}

// redirect re-points the pool at addr, learned from an ERR not-primary
// reply; a member not yet in the list is adopted. An empty addr (the
// replying node knows no primary — mid-election) rotates to the next
// candidate instead.
func (p *addrPool) redirect(addr string) {
	p.redirects.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if addr == "" {
		p.cur = (p.cur + 1) % len(p.addrs)
		return
	}
	for i, a := range p.addrs {
		if a == addr {
			p.cur = i
			return
		}
	}
	p.addrs = append(p.addrs, addr)
	p.cur = len(p.addrs) - 1
}

// rotate moves past a member whose connection died, unless another
// worker already re-pointed the pool elsewhere.
func (p *addrPool) rotate(failed string) {
	p.reconns.Add(1)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.addrs[p.cur] == failed {
		p.cur = (p.cur + 1) % len(p.addrs)
	}
}

// dial connects to the believed primary, falling back through the rest
// of the list; used by the verify/stats paths, which need any live
// member rather than a write-accepting one.
func (p *addrPool) dial() (*client.Client, error) {
	var lastErr error
	for range p.snapshot() {
		addr := p.primary()
		c, err := client.DialTimeout(addr, 2*time.Second)
		if err == nil {
			return c, nil
		}
		lastErr = err
		p.rotate(addr)
	}
	return nil, lastErr
}

func (p *addrPool) snapshot() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.addrs...)
}

// transient reports whether err is a transport failure worth re-dialing
// around, as opposed to a clean protocol error on a healthy connection.
func transient(err error) bool {
	var ne net.Error
	return errors.Is(err, io.EOF) || errors.As(err, &ne) ||
		strings.Contains(err.Error(), "connection desynced")
}

// failoverClient is one worker's connection with redirect-following: do
// runs a round trip against the believed primary, chasing ERR
// not-primary redirects and re-dialing around dead connections until
// the exchange lands or retryBudget runs out. Verdicts (OK/SHED) and
// ordinary protocol errors pass straight through.
//
// A retried transaction can double-apply when the crash swallowed the
// first attempt's ack: that is exactly the counter > acked case the
// audit tolerates, and the balanced deltas keep conservation at zero
// regardless of how many times they land.
type failoverClient struct {
	pool *addrPool
	c    *client.Client
	addr string
}

func (f *failoverClient) close() {
	if f.c != nil {
		f.c.Close()
		f.c = nil
	}
}

func (f *failoverClient) do(fn func(*client.Client) error) error {
	if !f.pool.multi() {
		// Single-address runs keep the classic fail-fast contract: no
		// retries, a dead connection just gets re-dialed next call.
		if f.c == nil {
			addr := f.pool.primary()
			c, err := client.DialTimeout(addr, 2*time.Second)
			if err != nil {
				return err
			}
			f.c, f.addr = c, addr
		}
		err := fn(f.c)
		if err != nil && transient(err) {
			f.close()
		}
		return err
	}
	deadline := time.Now().Add(retryBudget)
	backoff := 25 * time.Millisecond
	retry := func(err error) (bool, error) {
		if time.Now().After(deadline) {
			return false, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 250*time.Millisecond {
			backoff = 250 * time.Millisecond
		}
		return true, nil
	}
	for {
		if f.c == nil {
			addr := f.pool.primary()
			c, err := client.DialTimeout(addr, 2*time.Second)
			if err != nil {
				f.pool.rotate(addr)
				if again, err := retry(err); !again {
					return err
				}
				continue
			}
			f.c, f.addr = c, addr
		}
		err := fn(f.c)
		var np *client.NotPrimaryError
		switch {
		case err == nil, errors.Is(err, client.ErrShed):
			return err
		case errors.As(err, &np):
			// The deposed node answered cleanly but cannot take writes;
			// drop the connection so the next attempt dials the member
			// it named (or the next candidate, when it named none).
			f.close()
			f.pool.redirect(np.Addr)
			if again, err := retry(err); !again {
				return err
			}
		case transient(err):
			f.close()
			f.pool.rotate(f.addr)
			if again, err := retry(err); !again {
				return err
			}
		default:
			return err
		}
	}
}
