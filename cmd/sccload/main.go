// Command sccload is a concurrent closed-loop load generator for sccserve.
//
//	sccload -addr :7070 -clients 64 -ops 200 -mix low
//	sccload -addr :7070 -clients 64 -ops 200 -mix low -pipeline 16
//
// Each client drives one TCP connection: it draws transactions from an
// internal/workload mix (the paper's Sec. 4 transaction model — access
// lists, write probabilities, deadlines, value functions), converts each
// into one UPD wire transaction (reads become read dependencies, writes
// become balanced ± deltas so the keyspace total is conserved, plus a
// per-client commit counter key), and reports throughput, latency
// percentiles, and value accrued via internal/stats.
//
// With -pipeline n each client switches from one round trip per
// transaction to the REQ/RES pipelined framing, keeping up to n
// transactions in flight on its connection via the multiplexing client;
// every transaction's latency, deadline, and value accounting is still
// measured on its own request/response pair.
//
// With -interactive each transaction becomes a server-side TXN session:
// BEGIN enters the admission queue, every operation is its own round
// trip preceded by -think of client think time (the engine's SCC
// shadows stay live in between), and COMMIT returns the committed write
// results. Combined with -pipeline n, each client drives n concurrent
// sessions over one multiplexed connection. Sessions whose value
// functions cross zero mid-think are reaped server-side and count as
// shed. This is the workload the one-shot verbs cannot express: open
// transactions holding speculative state across client latency.
//
// Two built-in invariants make every run a correctness check, not just a
// stopwatch: the balanced deltas mean the final SUM over value keys must
// be zero (a torn cross-shard commit breaks it), and each client's
// counter keys (one per in-flight slot, so a pipelined client never
// self-conflicts on its own audit key) must sum to its
// committed-transaction count (a lost update breaks it).
//
// Against a cluster, -addr takes the comma-separated member list. The
// per-round-trip path then follows ERR not-primary redirects: when the
// primary dies mid-run and a replica promotes, every worker re-points at
// the member the redirect names (re-dialing around dead connections with
// a bounded budget) and the summary reports how many redirects and
// reconnects the failover cost. A retried transaction that double-lands
// is exactly the counter > acked case the audit tolerates.
//
// The conservation invariant also audits crash recovery: run a load with
// a pinned -run-id against a durable server, SIGKILL and restart the
// server, then re-run with -verify-only -run-id <id> (plus
// -expect-recovered to assert the restart actually replayed a data
// directory) — the balanced deltas must still sum to zero over the
// recovered keyspace. scripts/e2e_recover.sh automates the cycle.
//
// Mixes: low (Sec. 4 baseline spread over -keys pages), high (the same
// class squeezed onto 16 hot pages with 4 accesses), two (the Fig. 14(b)
// two-class value mix: 10% long/tight/high-value, 90% short/routine),
// single (one-key transactions on the audit counters only — 100%
// single-shard fast path, the mix that exercises group commit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/scenario"
	"repro/internal/server/client"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mixConfig(mix string, keys int, seed int64) workload.Config {
	switch mix {
	case "low", "single":
		// single reuses the baseline class for deadlines/values; its
		// transactions touch only the client's audit counter (one key,
		// one shard), so it exercises the fast path and group commit.
		cfg := workload.Baseline(100, seed)
		cfg.DBPages = keys
		return cfg
	case "high":
		cfg := workload.Baseline(100, seed)
		cfg.DBPages = 16
		cfg.Classes[0].NumOps = 4
		return cfg
	case "two":
		cfg := workload.TwoClass(100, seed)
		cfg.DBPages = keys
		return cfg
	}
	log.Fatalf("sccload: unknown -mix %q (want low, high, two, or single)", mix)
	return workload.Config{}
}

// cntSlotKey names one audit-counter key. Counters are sharded per
// in-flight slot: every transaction of a pipelined batch (or every
// concurrent interactive session) writes a different counter, so a
// client's own pipeline never self-conflicts on its audit key. Slot is
// always 0 in per-round-trip mode.
func cntSlotKey(runID int64, w, slot int) string {
	return fmt.Sprintf("cnt%d.%d.%d", runID, w, slot)
}

// txnBeginner opens interactive transaction sessions: both the blocking
// Client and the pipelined Mux qualify, so -interactive composes with
// -pipeline.
type txnBeginner interface {
	Begin(client.TxOpts) (*client.Txn, error)
}

// traceAgg pools sampled lifecycle traces across all clients. For each
// stage it keeps the offsets (seconds since submit) at which traced
// transactions reached it, so the report can show where server-side time
// went — queueing, speculation, parking, commit — not just the
// end-to-end round trip.
type traceAgg struct {
	mu      sync.Mutex
	sampled int                      // transactions issued with trace=1
	carried int                      // replies that actually carried a timeline
	stages  map[string]*stats.Sample // stage -> submit-relative offsets (s)
}

func newTraceAgg() *traceAgg {
	return &traceAgg{stages: make(map[string]*stats.Sample)}
}

// add books one traced transaction's reply timeline (empty for verdicts
// that carry no trace, e.g. sheds and errors — still counted as sampled).
func (a *traceAgg) add(trace string) {
	events := obs.ParseTrace(trace)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sampled++
	if len(events) == 0 {
		return
	}
	a.carried++
	for _, e := range events {
		s := a.stages[e.Stage]
		if s == nil {
			s = stats.NewSample(0, int64(len(a.stages)))
			a.stages[e.Stage] = s
		}
		s.Add(e.At.Seconds())
	}
}

// stageOrder is the lifecycle order for the trace report; stages outside
// it (future additions) sort after, alphabetically.
var stageOrder = []string{
	obs.StageEnqueue, obs.StageAdmit, obs.StageFork, obs.StagePark,
	obs.StageResume, obs.StagePromotion, obs.StageRestart, obs.StageDefer,
	obs.StageDeferred, obs.StageInstall, obs.StageCommit, obs.StageAbort,
	obs.StageShed, obs.StageReap,
}

// orderedStages returns the observed stage names in lifecycle order.
func (a *traceAgg) orderedStages() []string {
	rank := make(map[string]int, len(stageOrder))
	for i, s := range stageOrder {
		rank[s] = i
	}
	names := make([]string, 0, len(a.stages))
	for s := range a.stages {
		names = append(names, s)
	}
	sort.Slice(names, func(i, j int) bool {
		ri, iok := rank[names[i]]
		rj, jok := rank[names[j]]
		switch {
		case iok && jok:
			return ri < rj
		case iok != jok:
			return iok
		default:
			return names[i] < names[j]
		}
	})
	return names
}

// benchStage is one stage's summary in the -bench-out artifact.
type benchStage struct {
	N     int64   `json:"n"`
	P50Ms float64 `json:"p50_ms"`
	P99Ms float64 `json:"p99_ms"`
}

// benchOutput is the machine-readable run summary written by -bench-out.
// BENCH_<n>.json artifacts checked into the repo use this schema; the CI
// nightly bench job uploads one per run, so the fields are append-only.
type benchOutput struct {
	Timestamp  string  `json:"timestamp"`
	Mix        string  `json:"mix"`
	Clients    int     `json:"clients"`
	OpsClient  int     `json:"ops_per_client"`
	Pipeline   int     `json:"pipeline"`
	Interact   bool    `json:"interactive"`
	ThinkMs    float64 `json:"think_ms"`
	RunID      int64   `json:"run_id"`
	ElapsedSec float64 `json:"elapsed_sec"`
	Committed  int64   `json:"committed"`
	Shed       int     `json:"shed"`
	Errors     int     `json:"errors"`
	Throughput float64 `json:"throughput_txn_per_sec"`
	P50Ms      float64 `json:"latency_p50_ms"`
	P99Ms      float64 `json:"latency_p99_ms"`
	MeanMs     float64 `json:"latency_mean_ms"`
	MissedPct  float64 `json:"deadline_missed_pct"`
	ValuePct   float64 `json:"value_pct_of_max"`
	ValueSum   float64 `json:"value_sum"`
	MaxValue   float64 `json:"value_max"`

	// Failover accounting for multi-address -addr runs: redirects the
	// load followed and connections it re-dialed across a promotion.
	Redirects  int64 `json:"redirects_followed,omitempty"`
	Reconnects int64 `json:"reconnects,omitempty"`

	// Server-side counters snapshot (STATS verb) after the run.
	Server map[string]string `json:"server,omitempty"`

	// Per-stage submit-relative offsets from -trace-sample, lifecycle
	// order preserved via the stage name keys.
	TraceSampled int                   `json:"trace_sampled,omitempty"`
	TraceCarried int                   `json:"trace_carried,omitempty"`
	Stages       map[string]benchStage `json:"stages,omitempty"`
}

// clientResult accumulates one client's outcomes.
type clientResult struct {
	m         stats.Metrics
	lat       *stats.Sample
	shed      int
	errors    int
	committed int64 // successful transactions, cross-checked against cnt<i>

	// Read-replica mix outcomes (with -replica): read-only snapshot
	// transactions served by the replica, kept out of the primary's
	// commit/conservation accounting.
	replReads  int
	replShed   int // reads shed on replica lag (repl_shed server-side)
	replErrors int
	replLat    *stats.Sample
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "sccserve address, or a comma-separated cluster member list (the per-round-trip path then follows ERR not-primary redirects across failover)")
	clients := flag.Int("clients", 64, "concurrent closed-loop clients")
	ops := flag.Int("ops", 200, "transactions per client")
	keys := flag.Int("keys", 256, "keyspace size for the low/two mixes")
	mix := flag.String("mix", "low", "workload mix: low | high | two | single")
	seed := flag.Int64("seed", 1, "base RNG seed")
	pipeline := flag.Int("pipeline", 0, "transactions kept in flight per connection via REQ/RES pipelining (0 = one blocking round trip per transaction); with -interactive: concurrent sessions per connection")
	interactive := flag.Bool("interactive", false, "drive each transaction as an interactive TXN session (BEGIN, one round trip per op, COMMIT) instead of a one-shot UPD")
	think := flag.Duration("think", 0, "with -interactive: client think time before each operation of a session")
	replicaAddr := flag.String("replica", "", "read-replica address: a fraction of each client's transactions become read-only snapshot reads sent there")
	replicaReads := flag.Float64("replica-reads", 0.25, "with -replica: fraction of transactions issued read-only against the replica")
	runIDFlag := flag.Int64("run-id", 0, "key-namespace nonce (0 = derive from the clock); pin it to audit a run across a server restart")
	verifyOnly := flag.Bool("verify-only", false, "skip the load phase: only re-check conservation over -run-id's keyspace (the kill-and-restart self-check)")
	expectRecovered := flag.Bool("expect-recovered", false, "fail unless the server's STATS report recovered_index > 0 (assert the server restarted from a data directory)")
	ackedOut := flag.String("acked-out", "", "record each client's acknowledged-commit count to this file after the load phase (written even when the server died mid-run), for a later -verify-only -acked-in audit")
	ackedIn := flag.String("acked-in", "", "with -verify-only: audit the counter keys against the acked counts this file recorded — counters below the acked count are lost acked commits (fail); counters above it are commits whose ack the crash swallowed (tolerated)")
	traceSample := flag.Int("trace-sample", 0, "request a server-side lifecycle trace (trace=1) on every nth transaction and report per-stage p50/p99 offsets (0 = off)")
	benchOut := flag.String("bench-out", "", "write the run summary as JSON to this file (the BENCH_<n>.json artifact schema)")
	matrix := flag.String("matrix", "", "run a scenario-matrix preset (smoke | full) instead of a single load: boots one in-process server per cell (ignoring -addr), drives the grid, audits every cell, and emits one scc-scenario/v1 JSON artifact")
	matrixOut := flag.String("matrix-out", "", "with -matrix: write the scc-scenario/v1 artifact to this file instead of stdout")
	cellDuration := flag.Duration("cell-duration", 0, "with -matrix: override each cell's load duration (0 = the preset's own)")
	eventsMerge := flag.Bool("events-merge", false, "merge the flight-recorder dump files named as positional arguments (from <data-dir>/flight on primary and replicas) into one causal timeline on stdout, grouped by global commit epoch; no load is run")
	flag.Parse()

	if *eventsMerge {
		if flag.NArg() == 0 {
			log.Fatal("sccload: -events-merge needs one or more dump files (usage: sccload -events-merge <dump.events>...)")
		}
		dumps := make([]flight.Dump, 0, flag.NArg())
		for _, path := range flag.Args() {
			d, err := flight.ParseDumpFile(path)
			if err != nil {
				log.Fatalf("sccload: -events-merge: %v", err)
			}
			dumps = append(dumps, d)
		}
		if err := flight.MergeTimeline(dumps, os.Stdout); err != nil {
			log.Fatalf("sccload: -events-merge: %v", err)
		}
		return
	}

	if *matrix != "" {
		if err := runMatrix(*matrix, *cellDuration, *matrixOut); err != nil {
			log.Fatalf("sccload: matrix: %v", err)
		}
		return
	}

	pool := newAddrPool(*addr)
	if len(pool.addrs) == 0 {
		log.Fatal("sccload: -addr needs at least one address")
	}

	// Every key carries a per-run nonce: counters so each run audits its
	// own commits, and value keys so each run's conservation sum is
	// self-contained — a prior run on the same server balances its
	// deltas only over its own full span, so sharing pages across runs
	// would leave residue in any narrower window. A pinned -run-id makes
	// the namespace reproducible, so a later -verify-only invocation can
	// re-audit the same keys — across a server crash and recovery.
	runID := *runIDFlag
	if runID == 0 {
		runID = time.Now().UnixNano() % 1e9
	}

	if *verifyOnly {
		if *runIDFlag == 0 {
			log.Fatal("sccload: -verify-only needs the -run-id of the run to audit")
		}
		pages := 0
		if *mix != "single" {
			pages = mixConfig(*mix, *keys, 0).DBPages
		}
		if pages <= 0 && *keys > 0 {
			// -mix single writes no value keys: summing zero keys would
			// "pass" while auditing nothing. (-keys 0 stays allowed as
			// the documented connectivity probe.)
			log.Fatalf("sccload: -verify-only has nothing to audit for -mix %s (no value keys); rerun with the mix the load used", *mix)
		}
		// No per-client results survive a restart unless the load phase
		// recorded them with -acked-out: the baseline audit is the
		// conservation invariant (balanced deltas must still sum to zero
		// over the run's keyspace — all-or-nothing recovery of cross-shard
		// commits is exactly what keeps it true), plus, optionally, the
		// server's own recovery report. With -acked-in the counter audit
		// runs too, against the recorded acked counts: a counter below its
		// client's acked count is a lost acknowledged commit (the
		// durability lie, always a failure), while a counter above it is a
		// commit whose ack the crash swallowed — correct behavior, whether
		// the write survived recovery or was reconciled away as an
		// undecided cross-shard epoch.
		slots := 1
		var acked []int64
		if *ackedIn != "" {
			var err error
			acked, slots, err = loadAcked(*ackedIn, runID)
			if err != nil {
				log.Fatalf("sccload: -acked-in: %v", err)
			}
		}
		if failed := verify(pool, pages, runID, slots, acked); failed {
			fmt.Println("  invariants FAIL")
			os.Exit(1)
		}
		fmt.Printf("sccload: verify-only run %d: conservation holds over %d keys\n", runID, pages)
		if acked != nil {
			fmt.Printf("sccload: acked-commit audit over %d clients: no acked commit lost\n", len(acked))
		}
		if *expectRecovered {
			if failed := checkRecovered(pool); failed {
				os.Exit(1)
			}
		}
		return
	}

	// Lifecycle trace sampling: a global sequence across all clients
	// traces every nth transaction, so the sample spreads over the whole
	// run rather than front-loading one client's burst.
	traces := newTraceAgg()
	var traceSeq atomic.Int64
	sampleTrace := func() bool {
		return *traceSample > 0 && (traceSeq.Add(1)-1)%int64(*traceSample) == 0
	}

	results := make([]clientResult, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.lat = stats.NewSample(0, int64(w))
			gen := workload.NewGenerator(mixConfig(*mix, *keys, *seed+int64(w)))
			keyPrefix := fmt.Sprintf("k%d.", runID)
			single := *mix == "single"
			wireOpsFor := func(t *model.Txn, slot int) []client.Op {
				cnt := cntSlotKey(runID, w, slot)
				if single {
					return []client.Op{{Key: cnt, Delta: 1, Write: true}}
				}
				return toWireOps(t, keyPrefix, cnt)
			}

			// record books one transaction's outcome; lat is the observed
			// completion latency in seconds.
			record := func(t *model.Txn, lat float64, err error) {
				res.m.MaxValueSum += t.Class.Value
				switch err {
				case nil:
					res.lat.Add(lat)
					res.committed++
					res.m.Committed++
					// Value at commit: full value inside the relative
					// deadline, penalty-decayed past it.
					v := t.Class.Value
					if rel := t.RelDeadline(); lat > rel {
						res.m.Missed++
						res.m.TardinessSum += lat - rel
						v -= (lat - rel) * t.PenaltyGradient()
					}
					res.m.ValueSum += v
				case client.ErrShed:
					res.shed++
				default:
					res.errors++
				}
			}
			txOpts := func(t *model.Txn) client.TxOpts {
				return client.TxOpts{
					Value:    t.Class.Value,
					Deadline: time.Duration(t.RelDeadline() * float64(time.Second)),
					Gradient: t.PenaltyGradient(),
				}
			}

			// Read-replica mix: a fraction of transactions is converted to
			// a read-only snapshot of the same access list and served by
			// the replica, exercising its value-cognizant lag shedding.
			// Replica reads always use one blocking round trip each.
			var replC *client.Client
			var replRng *rand.Rand
			if *replicaAddr != "" {
				var err error
				replC, err = client.Dial(*replicaAddr)
				if err != nil {
					log.Printf("sccload: client %d: replica: %v", w, err)
				} else {
					defer replC.Close()
					res.replLat = stats.NewSample(0, int64(w)+7)
					replRng = rand.New(rand.NewSource(*seed + int64(w)*31 + 17))
				}
			}
			// replMu guards the replica accounting fields: concurrent
			// interactive sessions of one client share them. The network
			// round trip itself runs unlocked (Client serializes its own
			// connection), so sessions never stall behind each other's
			// replica RTT.
			var replMu sync.Mutex
			replicaRead := func(t *model.Txn) {
				ops := make([]client.Op, 0, len(t.Ops))
				for _, o := range t.Ops {
					ops = append(ops, client.Op{Key: fmt.Sprintf("%s%d", keyPrefix, o.Page)})
				}
				t0 := time.Now()
				_, err := replC.Update(ops, txOpts(t))
				lat := time.Since(t0).Seconds()
				replMu.Lock()
				defer replMu.Unlock()
				switch err {
				case nil:
					res.replReads++
					res.replLat.Add(lat)
				case client.ErrShed:
					res.replShed++
				default:
					res.replErrors++
				}
			}
			takeReplica := func() bool {
				return replC != nil && replRng.Float64() < *replicaReads
			}

			if *interactive {
				// Interactive mode: every transaction is a TXN session —
				// BEGIN enters the admission queue, each op is its own
				// round trip (with think time before it), COMMIT carries
				// the committed write results. The conservation and
				// lost-update invariants audit these exactly like UPDs.
				// With -pipeline n, n sessions run concurrently over one
				// Mux (each on its own audit-counter slot); generation
				// and accounting are serialized on mu, the session round
				// trips are not.
				var mu sync.Mutex
				runSession := func(b txnBeginner, slot int) {
					mu.Lock()
					t := gen.Next()
					takeRepl := takeReplica()
					mu.Unlock()
					if takeRepl {
						replicaRead(t)
						return
					}
					wireOps := wireOpsFor(t, slot)
					opt := txOpts(t)
					traced := sampleTrace()
					opt.Trace = traced
					t0 := time.Now()
					tx, err := b.Begin(opt)
					if err == nil {
						for _, o := range wireOps {
							if *think > 0 {
								time.Sleep(*think)
							}
							if o.Write {
								_, err = tx.Add(o.Key, o.Delta)
							} else {
								_, err = tx.Get(o.Key)
							}
							if err != nil {
								tx.Abort() // best effort; the reaper covers failures
								break
							}
						}
						if err == nil {
							_, err = tx.Commit()
						}
					}
					lat := time.Since(t0).Seconds()
					if traced {
						tr := ""
						if tx != nil {
							tr = tx.Trace()
						}
						traces.add(tr)
					}
					mu.Lock()
					record(t, lat, err)
					mu.Unlock()
				}

				if *pipeline > 0 {
					m, err := client.DialMux(pool.primary())
					if err != nil {
						log.Printf("sccload: client %d: %v", w, err)
						res.errors = *ops
						return
					}
					defer m.Close()
					var swg sync.WaitGroup
					for slot := 0; slot < *pipeline; slot++ {
						n := *ops / *pipeline
						if slot < *ops%*pipeline {
							n++
						}
						swg.Add(1)
						go func(slot, n int) {
							defer swg.Done()
							for i := 0; i < n; i++ {
								runSession(m, slot)
							}
						}(slot, n)
					}
					swg.Wait()
					return
				}
				c, err := client.Dial(pool.primary())
				if err != nil {
					log.Printf("sccload: client %d: %v", w, err)
					res.errors = *ops
					return
				}
				defer c.Close()
				for i := 0; i < *ops; i++ {
					runSession(c, 0)
				}
				return
			}

			if *pipeline > 0 {
				m, err := client.DialMux(pool.primary())
				if err != nil {
					log.Printf("sccload: client %d: %v", w, err)
					res.errors = *ops
					return
				}
				defer m.Close()
				// Batch keeps -pipeline transactions in flight per
				// connection in one write burst; each entry's Elapsed is
				// its own response time (stamped at RES arrival), so the
				// latency/deadline/value accounting stays per-transaction.
				for done := 0; done < *ops; {
					n := min(*pipeline, *ops-done)
					reqs := make([]client.UpdateReq, 0, n)
					txns := make([]*model.Txn, 0, n)
					tracedReq := make([]bool, 0, n)
					for j := 0; j < n; j++ {
						t := gen.Next()
						if takeReplica() {
							replicaRead(t)
							continue
						}
						opt := txOpts(t)
						traced := sampleTrace()
						opt.Trace = traced
						txns = append(txns, t)
						tracedReq = append(tracedReq, traced)
						reqs = append(reqs, client.UpdateReq{
							Ops:  wireOpsFor(t, len(reqs)),
							Opts: opt,
						})
					}
					for j, o := range m.Batch(reqs) {
						if tracedReq[j] {
							traces.add(o.Trace)
						}
						record(txns[j], o.Elapsed.Seconds(), o.Err)
					}
					done += n
				}
				return
			}

			fc := &failoverClient{pool: pool}
			defer fc.close()
			for i := 0; i < *ops; i++ {
				t := gen.Next()
				if takeReplica() {
					replicaRead(t)
					continue
				}
				wireOps := wireOpsFor(t, 0)
				t0 := time.Now()
				var err error
				if sampleTrace() {
					var tr string
					err = fc.do(func(c *client.Client) error {
						var e error
						_, tr, e = c.UpdateTraced(wireOps, txOpts(t))
						return e
					})
					traces.add(tr)
				} else {
					err = fc.do(func(c *client.Client) error {
						_, e := c.Update(wireOps, txOpts(t))
						return e
					})
				}
				record(t, time.Since(t0).Seconds(), err)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Pool per-client outcomes.
	var m stats.Metrics
	all := stats.NewSample(0, 0)
	replAll := stats.NewSample(0, 0)
	var shed, errs int
	var committed int64
	var replReads, replShed, replErrs int
	for i := range results {
		r := &results[i]
		m.Merge(&r.m)
		shed += r.shed
		errs += r.errors
		committed += r.committed
		replReads += r.replReads
		replShed += r.replShed
		replErrs += r.replErrors
		if r.lat != nil {
			for _, x := range r.lat.Raw() {
				all.Add(x)
			}
		}
		if r.replLat != nil {
			for _, x := range r.replLat.Raw() {
				replAll.Add(x)
			}
		}
	}

	framing := "per-round-trip"
	if *pipeline > 0 {
		framing = fmt.Sprintf("pipelined(depth=%d)", *pipeline)
	}
	if *interactive {
		framing = fmt.Sprintf("interactive(think=%s", *think)
		if *pipeline > 0 {
			framing += fmt.Sprintf(", sessions=%d", *pipeline)
		}
		framing += ")"
	}
	fmt.Printf("sccload: mix=%s clients=%d ops/client=%d wire=%s run-id=%d\n", *mix, *clients, *ops, framing, runID)
	fmt.Printf("  committed  %d (shed %d, errors %d) in %.2fs\n", committed, shed, errs, elapsed.Seconds())
	fmt.Printf("  throughput %.0f txn/s\n", float64(committed)/elapsed.Seconds())
	if all.N() > 0 {
		fmt.Printf("  latency    p50 %.2fms  p99 %.2fms  mean %.2fms\n",
			all.Percentile(50)*1000, all.Percentile(99)*1000, all.Mean()*1000)
	}
	fmt.Printf("  deadlines  missed %.1f%%  avg tardiness %.2fms\n", m.MissedRatio(), m.AvgTardiness()*1000)
	fmt.Printf("  value      accrued %.1f%% of max (%.0f / %.0f)\n", m.SystemValuePct(), m.ValueSum, m.MaxValueSum)
	if pool.multi() {
		fmt.Printf("  failover   redirects followed %d, reconnects %d (primary %s)\n",
			pool.redirects.Load(), pool.reconns.Load(), pool.primary())
	}
	if *replicaAddr != "" {
		fmt.Printf("  replica    reads %d (shed %d, errors %d)", replReads, replShed, replErrs)
		if replAll.N() > 0 {
			fmt.Printf("  p50 %.2fms  p99 %.2fms", replAll.Percentile(50)*1000, replAll.Percentile(99)*1000)
		}
		fmt.Println()
	}
	if *traceSample > 0 {
		fmt.Printf("  traces     sampled %d, carried %d; stage offsets from submit:\n",
			traces.sampled, traces.carried)
		for _, stage := range traces.orderedStages() {
			smp := traces.stages[stage]
			fmt.Printf("    %-10s n=%-6d p50 %8.3fms  p99 %8.3fms\n",
				stage, smp.N(), smp.Percentile(50)*1000, smp.Percentile(99)*1000)
		}
	}

	// Conservation must be checked over the page span the mix actually
	// wrote (the high mix pins DBPages=16 regardless of -keys; the
	// single mix writes no value keys at all).
	pages := 0
	if *mix != "single" {
		pages = mixConfig(*mix, *keys, 0).DBPages
	}
	slots := 1
	if *pipeline > 0 {
		slots = *pipeline
	}
	ackedCounts := make([]int64, len(results))
	for i := range results {
		ackedCounts[i] = results[i].committed
	}
	// Record the acked counts before verifying: when a chaos harness
	// kills the server mid-run, this run's verify fails on the dead
	// connection, but the acked file must still reach the post-restart
	// -verify-only -acked-in audit.
	if *ackedOut != "" {
		if err := saveAcked(*ackedOut, runID, slots, ackedCounts); err != nil {
			log.Printf("sccload: -acked-out: %v", err)
		}
	}
	if failed := verify(pool, pages, runID, slots, ackedCounts); failed {
		fmt.Println("  invariants FAIL")
		os.Exit(1)
	}
	fmt.Println("  invariants PASS (value conserved, no lost updates)")
	var serverStats map[string]string
	if c, err := pool.dial(); err == nil {
		if st, err := c.Stats(); err == nil {
			serverStats = st
			fmt.Printf("  server     cross=%s cross_restarts=%s cross_shed=%s shed=%s commit_batches=%s commits=%s\n",
				st["cross"], st["cross_restarts"], st["cross_shed"], st["shed"], st["commit_batches"], st["commits"])
			if wa, ok := st["wal_appends"]; ok {
				fmt.Printf("  durability wal_appends=%s wal_fsyncs=%s ckpt_count=%s recovered_index=%s\n",
					wa, st["wal_fsyncs"], st["ckpt_count"], st["recovered_index"])
			}
		}
		c.Close()
	}
	if *benchOut != "" {
		out := benchOutput{
			Timestamp:  time.Now().UTC().Format(time.RFC3339),
			Mix:        *mix,
			Clients:    *clients,
			OpsClient:  *ops,
			Pipeline:   *pipeline,
			Interact:   *interactive,
			ThinkMs:    think.Seconds() * 1000,
			RunID:      runID,
			ElapsedSec: elapsed.Seconds(),
			Committed:  committed,
			Shed:       shed,
			Errors:     errs,
			Throughput: float64(committed) / elapsed.Seconds(),
			MissedPct:  m.MissedRatio(),
			ValuePct:   m.SystemValuePct(),
			ValueSum:   m.ValueSum,
			MaxValue:   m.MaxValueSum,
			Redirects:  pool.redirects.Load(),
			Reconnects: pool.reconns.Load(),
			Server:     serverStats,
		}
		if all.N() > 0 {
			out.P50Ms = all.Percentile(50) * 1000
			out.P99Ms = all.Percentile(99) * 1000
			out.MeanMs = all.Mean() * 1000
		}
		if *traceSample > 0 {
			out.TraceSampled = traces.sampled
			out.TraceCarried = traces.carried
			out.Stages = make(map[string]benchStage, len(traces.stages))
			for stage, smp := range traces.stages {
				out.Stages[stage] = benchStage{
					N:     int64(smp.N()),
					P50Ms: smp.Percentile(50) * 1000,
					P99Ms: smp.Percentile(99) * 1000,
				}
			}
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			log.Fatalf("sccload: -bench-out: %v", err)
		}
		if err := os.WriteFile(*benchOut, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("sccload: -bench-out: %v", err)
		}
		fmt.Printf("  bench-out  %s\n", *benchOut)
	}
	if *expectRecovered && checkRecovered(pool) {
		os.Exit(1)
	}
}

// checkRecovered asserts the server reports a nonzero recovered_index —
// the kill-and-restart e2e's proof that the serving process actually
// rebuilt its state from the data directory. Returns true on failure.
func checkRecovered(pool *addrPool) bool {
	c, err := pool.dial()
	if err != nil {
		log.Printf("sccload: recovered check: %v", err)
		return true
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		log.Printf("sccload: recovered check STATS: %v", err)
		return true
	}
	rec, ok := st["recovered_index"]
	if !ok {
		log.Printf("sccload: server reports no recovered_index (durability off?)")
		return true
	}
	n, err := strconv.ParseInt(rec, 10, 64)
	if err != nil || n <= 0 {
		log.Printf("sccload: recovered_index=%s, want > 0", rec)
		return true
	}
	fmt.Printf("sccload: server recovered_index=%d\n", n)
	return false
}

// toWireOps converts a workload transaction into wire ops: reads become
// dependencies, writes become balanced ± deltas (sum zero), and the
// client's counter key is incremented — one extra write that turns every
// committed transaction into an auditable event.
func toWireOps(t *model.Txn, keyPrefix, cntKey string) []client.Op {
	var ops []client.Op
	sign := int64(1)
	writes := 0
	for _, o := range t.Ops {
		if o.Write {
			writes++
		}
	}
	left := writes
	for _, o := range t.Ops {
		key := fmt.Sprintf("%s%d", keyPrefix, o.Page)
		if !o.Write {
			ops = append(ops, client.Op{Key: key})
			continue
		}
		delta := sign * int64(1+t.ID%7)
		sign = -sign
		left--
		if left == 0 && writes%2 == 1 {
			delta = 0 // odd write count: last write carries no delta
		}
		ops = append(ops, client.Op{Key: key, Delta: delta, Write: true})
	}
	return append(ops, client.Op{Key: cntKey, Delta: 1, Write: true})
}

// saveAcked persists per-client acknowledged-commit counts for a later
// -verify-only -acked-in audit: one whitespace-separated line, "v1
// <runID> <slots> <n> <count>...". tmp+rename so a concurrent kill
// leaves either nothing or a complete file.
func saveAcked(path string, runID int64, slots int, counts []int64) error {
	var b []byte
	b = fmt.Appendf(b, "v1 %d %d %d", runID, slots, len(counts))
	for _, c := range counts {
		b = fmt.Appendf(b, " %d", c)
	}
	b = append(b, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// loadAcked reads a saveAcked file, validating it against the run being
// audited.
func loadAcked(path string, runID int64) ([]int64, int, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var fileRun int64
	var slots, n int
	fields := strings.Fields(string(raw))
	if len(fields) < 4 || fields[0] != "v1" {
		return nil, 0, fmt.Errorf("malformed acked file %s", path)
	}
	if fileRun, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
		return nil, 0, fmt.Errorf("malformed acked file %s", path)
	}
	if fileRun != runID {
		return nil, 0, fmt.Errorf("acked file %s records run %d, auditing run %d", path, fileRun, runID)
	}
	if slots, err = strconv.Atoi(fields[2]); err != nil || slots <= 0 {
		return nil, 0, fmt.Errorf("malformed acked file %s", path)
	}
	if n, err = strconv.Atoi(fields[3]); err != nil || n < 0 || len(fields) != 4+n {
		return nil, 0, fmt.Errorf("malformed acked file %s", path)
	}
	counts := make([]int64, n)
	for i := range counts {
		if counts[i], err = strconv.ParseInt(fields[4+i], 10, 64); err != nil {
			return nil, 0, fmt.Errorf("malformed acked file %s", path)
		}
	}
	return counts, slots, nil
}

// verify checks the two invariants against the live server. slots is the
// number of per-client audit-counter keys (the pipeline depth); acked is
// each client's acknowledged-commit count (nil skips the counter audit —
// the bare -verify-only shape, where no acks survived the restart).
func verify(pool *addrPool, keys int, runID int64, slots int, acked []int64) bool {
	c, err := pool.dial()
	if err != nil {
		log.Printf("sccload: verify: %v", err)
		return true
	}
	defer c.Close()
	failed := false

	// Invariant 1: balanced deltas conserve the keyspace total at zero.
	// Summed in chunks to stay under the server's request-line bound;
	// chunking is sound because this run's namespaced keys are quiescent
	// once its clients have finished.
	const chunk = 2048
	var total int64
	for lo := 0; lo < keys && !failed; lo += chunk {
		hi := lo + chunk
		if hi > keys {
			hi = keys
		}
		valueKeys := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			valueKeys = append(valueKeys, fmt.Sprintf("k%d.%d", runID, i))
		}
		sum, err := c.Sum(valueKeys...)
		if err != nil {
			log.Printf("sccload: verify SUM: %v", err)
			failed = true
			break
		}
		total += sum
	}
	if !failed && total != 0 {
		log.Printf("sccload: CONSERVATION VIOLATED: sum over %d keys = %d, want 0", keys, total)
		failed = true
	}

	// Invariant 2: every acknowledged transaction bumped one of its
	// client's slot counters. counter < acks is a genuine lost acked
	// commit; counter > acks means the server committed but the ack never
	// reached the client — lost in transit, or swallowed by a crash
	// (after which the write either survived recovery or was discarded as
	// an undecided cross-shard epoch; both are correct for unacked work)
	// — warn without failing.
	for w := range acked {
		want := acked[w]
		slotKeys := make([]string, slots)
		for slot := range slotKeys {
			slotKeys[slot] = cntSlotKey(runID, w, slot)
		}
		// One snapshot request per client; unwritten slot keys read as 0.
		got, err := c.Sum(slotKeys...)
		if err != nil {
			log.Printf("sccload: verify counters of client %d: %v", w, err)
			failed = true
			continue
		}
		switch {
		case got < want:
			log.Printf("sccload: LOST UPDATES: client %d got %d acks but counters show %d", w, want, got)
			failed = true
		case got > want:
			log.Printf("sccload: warning: client %d counters %d exceed %d acks (OK responses lost in transit)", w, got, want)
		}
	}
	return failed
}

// runMatrix drives a scenario-matrix preset: internal/scenario boots a
// fresh in-process server topology per cell, runs the cell's workload ×
// value-function point against it, audits conservation and the
// acked-commit ledger, and the merged scc-scenario/v1 artifact lands on
// stdout or -matrix-out. Cell progress goes to stderr so the artifact
// stream stays clean.
func runMatrix(preset string, cellDuration time.Duration, out string) error {
	art, err := scenario.RunGrid(preset, cellDuration, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if err != nil {
		return err
	}
	failed := 0
	for _, row := range art.Cells {
		ok := row.ConservationOK && row.LedgerOK && (row.OracleOK == nil || *row.OracleOK)
		if !ok {
			failed++
			fmt.Fprintf(os.Stderr, "sccload: matrix cell %s FAILED audits (conservation=%v ledger=%v)\n",
				row.Cell, row.ConservationOK, row.LedgerOK)
		}
	}
	enc, err := json.MarshalIndent(art, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out != "" {
		if err := os.WriteFile(out, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sccload: matrix artifact (%d cells) written to %s\n", len(art.Cells), out)
	} else {
		os.Stdout.Write(enc)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d cells failed audits", failed, len(art.Cells))
	}
	return nil
}
