// Command sccload is a concurrent closed-loop load generator for sccserve.
//
//	sccload -addr :7070 -clients 64 -ops 200 -mix low
//
// Each client drives one TCP connection: it draws transactions from an
// internal/workload mix (the paper's Sec. 4 transaction model — access
// lists, write probabilities, deadlines, value functions), converts each
// into one UPD wire transaction (reads become read dependencies, writes
// become balanced ± deltas so the keyspace total is conserved, plus a
// per-client commit counter key), and reports throughput, latency
// percentiles, and value accrued via internal/stats.
//
// Two built-in invariants make every run a correctness check, not just a
// stopwatch: the balanced deltas mean the final SUM over value keys must
// be zero (a torn cross-shard commit breaks it), and each client's counter
// key must equal its committed-transaction count (a lost update breaks
// it).
//
// Mixes: low (Sec. 4 baseline spread over -keys pages), high (the same
// class squeezed onto 16 hot pages with 4 accesses), two (the Fig. 14(b)
// two-class value mix: 10% long/tight/high-value, 90% short/routine).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sync"
	"time"

	"repro/internal/model"
	"repro/internal/server/client"
	"repro/internal/stats"
	"repro/internal/workload"
)

func mixConfig(mix string, keys int, seed int64) workload.Config {
	switch mix {
	case "low":
		cfg := workload.Baseline(100, seed)
		cfg.DBPages = keys
		return cfg
	case "high":
		cfg := workload.Baseline(100, seed)
		cfg.DBPages = 16
		cfg.Classes[0].NumOps = 4
		return cfg
	case "two":
		cfg := workload.TwoClass(100, seed)
		cfg.DBPages = keys
		return cfg
	}
	log.Fatalf("sccload: unknown -mix %q (want low, high, or two)", mix)
	return workload.Config{}
}

// clientResult accumulates one client's outcomes.
type clientResult struct {
	m         stats.Metrics
	lat       *stats.Sample
	shed      int
	errors    int
	committed int64 // successful transactions, cross-checked against cnt<i>
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "sccserve address")
	clients := flag.Int("clients", 64, "concurrent closed-loop clients")
	ops := flag.Int("ops", 200, "transactions per client")
	keys := flag.Int("keys", 256, "keyspace size for the low/two mixes")
	mix := flag.String("mix", "low", "workload mix: low | high | two")
	seed := flag.Int64("seed", 1, "base RNG seed")
	flag.Parse()

	// Every key carries a per-run nonce: counters so each run audits its
	// own commits, and value keys so each run's conservation sum is
	// self-contained — a prior run on the same server balances its
	// deltas only over its own full span, so sharing pages across runs
	// would leave residue in any narrower window.
	runID := time.Now().UnixNano() % 1e9

	results := make([]clientResult, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := &results[w]
			res.lat = stats.NewSample(0, int64(w))
			c, err := client.Dial(*addr)
			if err != nil {
				log.Printf("sccload: client %d: %v", w, err)
				res.errors = *ops
				return
			}
			defer c.Close()
			gen := workload.NewGenerator(mixConfig(*mix, *keys, *seed+int64(w)))
			cntKey := fmt.Sprintf("cnt%d.%d", runID, w)
			keyPrefix := fmt.Sprintf("k%d.", runID)
			for i := 0; i < *ops; i++ {
				t := gen.Next()
				wireOps := toWireOps(t, keyPrefix, cntKey)
				opts := client.TxOpts{
					Value:    t.Class.Value,
					Deadline: time.Duration(t.RelDeadline() * float64(time.Second)),
					Gradient: t.PenaltyGradient(),
				}
				t0 := time.Now()
				_, err := c.Update(wireOps, opts)
				lat := time.Since(t0).Seconds()
				res.m.MaxValueSum += t.Class.Value
				switch err {
				case nil:
					res.lat.Add(lat)
					res.committed++
					res.m.Committed++
					// Value at commit: full value inside the relative
					// deadline, penalty-decayed past it.
					v := t.Class.Value
					if rel := t.RelDeadline(); lat > rel {
						res.m.Missed++
						res.m.TardinessSum += lat - rel
						v -= (lat - rel) * t.PenaltyGradient()
					}
					res.m.ValueSum += v
				case client.ErrShed:
					res.shed++
				default:
					res.errors++
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// Pool per-client outcomes.
	var m stats.Metrics
	all := stats.NewSample(0, 0)
	var shed, errs int
	var committed int64
	for i := range results {
		r := &results[i]
		m.Merge(&r.m)
		shed += r.shed
		errs += r.errors
		committed += r.committed
		if r.lat != nil {
			for _, x := range r.lat.Raw() {
				all.Add(x)
			}
		}
	}

	fmt.Printf("sccload: mix=%s clients=%d ops/client=%d\n", *mix, *clients, *ops)
	fmt.Printf("  committed  %d (shed %d, errors %d) in %.2fs\n", committed, shed, errs, elapsed.Seconds())
	fmt.Printf("  throughput %.0f txn/s\n", float64(committed)/elapsed.Seconds())
	if all.N() > 0 {
		fmt.Printf("  latency    p50 %.2fms  p99 %.2fms  mean %.2fms\n",
			all.Percentile(50)*1000, all.Percentile(99)*1000, all.Mean()*1000)
	}
	fmt.Printf("  deadlines  missed %.1f%%  avg tardiness %.2fms\n", m.MissedRatio(), m.AvgTardiness()*1000)
	fmt.Printf("  value      accrued %.1f%% of max (%.0f / %.0f)\n", m.SystemValuePct(), m.ValueSum, m.MaxValueSum)

	// Conservation must be checked over the page span the mix actually
	// wrote (the high mix pins DBPages=16 regardless of -keys).
	pages := mixConfig(*mix, *keys, 0).DBPages
	if failed := verify(*addr, pages, runID, results); failed {
		fmt.Println("  invariants FAIL")
		os.Exit(1)
	}
	fmt.Println("  invariants PASS (value conserved, no lost updates)")
}

// toWireOps converts a workload transaction into wire ops: reads become
// dependencies, writes become balanced ± deltas (sum zero), and the
// client's counter key is incremented — one extra write that turns every
// committed transaction into an auditable event.
func toWireOps(t *model.Txn, keyPrefix, cntKey string) []client.Op {
	var ops []client.Op
	sign := int64(1)
	writes := 0
	for _, o := range t.Ops {
		if o.Write {
			writes++
		}
	}
	left := writes
	for _, o := range t.Ops {
		key := fmt.Sprintf("%s%d", keyPrefix, o.Page)
		if !o.Write {
			ops = append(ops, client.Op{Key: key})
			continue
		}
		delta := sign * int64(1+t.ID%7)
		sign = -sign
		left--
		if left == 0 && writes%2 == 1 {
			delta = 0 // odd write count: last write carries no delta
		}
		ops = append(ops, client.Op{Key: key, Delta: delta, Write: true})
	}
	return append(ops, client.Op{Key: cntKey, Delta: 1, Write: true})
}

// verify checks the two invariants against the live server.
func verify(addr string, keys int, runID int64, results []clientResult) bool {
	c, err := client.Dial(addr)
	if err != nil {
		log.Printf("sccload: verify: %v", err)
		return true
	}
	defer c.Close()
	failed := false

	// Invariant 1: balanced deltas conserve the keyspace total at zero.
	// Summed in chunks to stay under the server's request-line bound;
	// chunking is sound because this run's namespaced keys are quiescent
	// once its clients have finished.
	const chunk = 2048
	var total int64
	for lo := 0; lo < keys && !failed; lo += chunk {
		hi := lo + chunk
		if hi > keys {
			hi = keys
		}
		valueKeys := make([]string, 0, hi-lo)
		for i := lo; i < hi; i++ {
			valueKeys = append(valueKeys, fmt.Sprintf("k%d.%d", runID, i))
		}
		sum, err := c.Sum(valueKeys...)
		if err != nil {
			log.Printf("sccload: verify SUM: %v", err)
			failed = true
			break
		}
		total += sum
	}
	if !failed && total != 0 {
		log.Printf("sccload: CONSERVATION VIOLATED: sum over %d keys = %d, want 0", keys, total)
		failed = true
	}

	// Invariant 2: every committed transaction bumped its client counter.
	// counter < acks is a genuine lost update; counter > acks means OK
	// responses were lost in transit after the server committed (a
	// transport artifact, not a store violation) — warn without failing.
	for w := range results {
		want := results[w].committed
		got, _, err := c.Get(fmt.Sprintf("cnt%d.%d", runID, w))
		if err != nil {
			log.Printf("sccload: verify cnt%d.%d: %v", runID, w, err)
			failed = true
			continue
		}
		switch {
		case got < want:
			log.Printf("sccload: LOST UPDATES: client %d got %d acks but counter shows %d", w, want, got)
			failed = true
		case got > want:
			log.Printf("sccload: warning: client %d counter %d exceeds %d acks (OK responses lost in transit)", w, got, want)
		}
	}
	return failed
}
