// Command sccsim runs a single RTDBS simulation with one protocol and
// prints every performance measure, for exploring configurations outside
// the paper's sweeps.
//
// Usage:
//
//	sccsim -protocol SCC-2S -rate 120 -txns 4000
//	sccsim -protocol "SCC-kS(4)" -rate 150 -pages 500 -ops 24 -writeprob 0.4
//	sccsim -protocol SCC-VW -rate 100 -twoclass -check
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/rtdbs"
	"repro/internal/workload"
)

func main() {
	proto := flag.String("protocol", "SCC-2S", "protocol name (see sccbench)")
	rate := flag.Float64("rate", 100, "arrival rate (txn/s)")
	txns := flag.Int("txns", 4000, "committed transactions to measure")
	warmup := flag.Int("warmup", 200, "warm-up commits excluded from metrics")
	seed := flag.Int64("seed", 1, "random seed")
	pages := flag.Int("pages", 1000, "database size in pages")
	ops := flag.Int("ops", 16, "page accesses per transaction")
	writeProb := flag.Float64("writeprob", 0.25, "probability an access is a write")
	slack := flag.Float64("slack", 2, "deadline slack factor")
	twoClass := flag.Bool("twoclass", false, "use the two-class value mix of Fig. 14(b)")
	check := flag.Bool("check", false, "verify serializability of the committed history")
	flag.Parse()

	var wl workload.Config
	if *twoClass {
		wl = workload.TwoClass(*rate, *seed)
	} else {
		wl = workload.Baseline(*rate, *seed)
		wl.DBPages = *pages
		wl.Classes[0].NumOps = *ops
		wl.Classes[0].WriteProb = *writeProb
		wl.Classes[0].SlackFactor = *slack
	}
	if err := wl.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	cfg := rtdbs.Config{
		Workload:      wl,
		Target:        *txns,
		Warmup:        *warmup,
		CheckReads:    *check,
		RecordHistory: *check,
		MaxActive:     8000,
	}
	res := rtdbs.Run(cfg, harness.Protocol(*proto).New())
	m := res.Metrics

	fmt.Printf("protocol           %s\n", res.Protocol)
	fmt.Printf("arrival rate       %.1f txn/s\n", *rate)
	fmt.Printf("simulated time     %.1f s\n", float64(res.SimTime))
	fmt.Printf("committed          %d (warm-up excluded: %d)\n", m.Committed, *warmup)
	if res.Truncated {
		fmt.Printf("NOTE               saturated: population cap reached before the target\n")
	}
	fmt.Printf("missed ratio       %.2f %%\n", m.MissedRatio())
	fmt.Printf("avg tardiness      %.3f s\n", m.AvgTardiness())
	fmt.Printf("system value       %.1f %%\n", m.SystemValuePct())
	fmt.Printf("restarts           %d (%.3f per commit)\n", m.Restarts, m.RestartsPerCommit())
	fmt.Printf("wasted fraction    %.3f\n", m.WastedFraction())
	fmt.Printf("shadow forks       %d\n", m.ShadowForks)
	fmt.Printf("shadow aborts      %d\n", m.ShadowAborts)
	fmt.Printf("promotions         %d\n", m.Promotions)
	fmt.Printf("commit waits       %d\n", m.CommitWaits)
	fmt.Printf("blocked waits      %d\n", m.BlockedWaits)
	fmt.Printf("priority aborts    %d\n", m.DeadlockAvert)

	if *check {
		if err := res.History.Check(); err != nil {
			fmt.Fprintf(os.Stderr, "SERIALIZABILITY VIOLATION: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("serializability    OK (%d commits verified)\n", res.History.Len())
	}
}
