// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation as testing.B benchmarks. Each BenchmarkFig* sub-benchmark
// runs one protocol at a contended point of the corresponding figure and
// reports the figure's metric via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the paper's comparison rows next to wall-clock cost. The full
// sweeps (all rates, full 4000-commit runs, confidence intervals) are
// produced by cmd/sccbench; these benchmarks are the scaled, repeatable
// regression points.
package repro

import (
	"encoding/binary"
	"fmt"
	"net"
	"sync/atomic"
	"testing"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/rtdbs"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/shard"
	"repro/internal/stats"
	"repro/internal/workload"
)

// benchPoint runs one protocol at one arrival rate and reports metrics.
func benchPoint(b *testing.B, proto string, rate float64, twoClass bool,
	metrics map[string]func(*stats.Metrics) float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		wl := workload.Baseline(rate, int64(i)+1)
		if twoClass {
			wl = workload.TwoClass(rate, int64(i)+1)
		}
		res := rtdbs.Run(rtdbs.Config{
			Workload: wl, Target: 400, Warmup: 40, MaxActive: 4000,
		}, harness.Protocol(proto).New())
		for name, f := range metrics {
			b.ReportMetric(f(res.Metrics), name)
		}
	}
}

func missed(m *stats.Metrics) float64 { return m.MissedRatio() }
func tardy(m *stats.Metrics) float64  { return m.AvgTardiness() * 1000 } // ms
func sysval(m *stats.Metrics) float64 { return m.SystemValuePct() }

// BenchmarkFig13aMissedRatio — Fig. 13-a at 150 txn/s: Missed Ratio of
// SCC-2S vs OCC-BC vs WAIT-50 vs 2PL-PA (paper: 30 / 78 / 92 / ~100 %).
func BenchmarkFig13aMissedRatio(b *testing.B) {
	for _, p := range []string{"SCC-2S", "OCC-BC", "WAIT-50", "2PL-PA"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, false, map[string]func(*stats.Metrics) float64{"missed_%": missed})
		})
	}
}

// BenchmarkFig13bTardiness — Fig. 13-b at 150 txn/s: Average Tardiness.
func BenchmarkFig13bTardiness(b *testing.B) {
	for _, p := range []string{"SCC-2S", "OCC-BC", "WAIT-50", "2PL-PA"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, false, map[string]func(*stats.Metrics) float64{"tardy_ms": tardy})
		})
	}
}

// BenchmarkFig14aSystemValue — Fig. 14-a at 150 txn/s, one value class.
func BenchmarkFig14aSystemValue(b *testing.B) {
	for _, p := range []string{"SCC-VW", "SCC-2S", "OCC-BC", "WAIT-50"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, false, map[string]func(*stats.Metrics) float64{"sysval_%": sysval})
		})
	}
}

// BenchmarkFig14bSystemValue — Fig. 14-b at 150 txn/s, two value classes
// (10% long/tight/high-value): SCC-VW's advantage shows here.
func BenchmarkFig14bSystemValue(b *testing.B) {
	for _, p := range []string{"SCC-VW", "SCC-2S", "OCC-BC", "WAIT-50"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, true, map[string]func(*stats.Metrics) float64{"sysval_%": sysval})
		})
	}
}

// BenchmarkFig15aMissedRatio — Fig. 15-a: SCC-VW misses more deadlines
// than SCC-2S...
func BenchmarkFig15aMissedRatio(b *testing.B) {
	for _, p := range []string{"SCC-VW", "SCC-2S"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, false, map[string]func(*stats.Metrics) float64{"missed_%": missed})
		})
	}
}

// BenchmarkFig15bTardiness — ...Fig. 15-b: but by a smaller margin.
func BenchmarkFig15bTardiness(b *testing.B) {
	for _, p := range []string{"SCC-VW", "SCC-2S"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, false, map[string]func(*stats.Metrics) float64{"tardy_ms": tardy})
		})
	}
}

// BenchmarkSecondaryMeasures — Sec. 4's explanatory counters at 100 txn/s.
func BenchmarkSecondaryMeasures(b *testing.B) {
	for _, p := range []string{"SCC-2S", "OCC-BC", "2PL-PA"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 100, false, map[string]func(*stats.Metrics) float64{
				"restarts/commit": func(m *stats.Metrics) float64 { return m.RestartsPerCommit() },
				"wasted_frac":     func(m *stats.Metrics) float64 { return m.WastedFraction() },
			})
		})
	}
}

// BenchmarkAblationKShadows — Sec. 2.1: missed ratio as the shadow budget
// k grows (k=1 is the OCC-BC degenerate case).
func BenchmarkAblationKShadows(b *testing.B) {
	for _, k := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			benchPoint(b, fmt.Sprintf("SCC-kS(%d)", k), 150, false,
				map[string]func(*stats.Metrics) float64{"missed_%": missed})
		})
	}
}

// BenchmarkAblationPolicy — LBFO vs FIFO vs Priority shadow replacement.
func BenchmarkAblationPolicy(b *testing.B) {
	for _, p := range []string{"SCC-kS(2)", "SCC-kS-FIFO(2)", "SCC-kS-PRIO(2)"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, false, map[string]func(*stats.Metrics) float64{"missed_%": missed})
		})
	}
}

// BenchmarkAblationAdaptiveK — SCC-AK rations shadows by class worth on
// the two-class workload.
func BenchmarkAblationAdaptiveK(b *testing.B) {
	for _, p := range []string{"SCC-AK", "SCC-2S", "SCC-CB"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 150, true, map[string]func(*stats.Metrics) float64{"sysval_%": sysval})
		})
	}
}

// BenchmarkAblationDelta — SCC-DC (exact Termination Rule) vs SCC-VW (the
// cheap approximation) on system value.
func BenchmarkAblationDelta(b *testing.B) {
	for _, p := range []string{"SCC-DC", "SCC-VW"} {
		b.Run(p, func(b *testing.B) {
			benchPoint(b, p, 100, false, map[string]func(*stats.Metrics) float64{"sysval_%": sysval})
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput of the
// discrete-event substrate (events/sec across a full SCC-2S run).
func BenchmarkSimulatorThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rtdbs.Run(rtdbs.Config{
			Workload: workload.Baseline(100, 1), Target: 400, Warmup: 0,
		}, harness.Protocol("SCC-2S").New())
	}
}

// BenchmarkEngineContended compares the live engine's modes on a hot-key
// increment workload: SCC-2S resolves conflicts by promotion, OCC-BC by
// restart.
func BenchmarkEngineContended(b *testing.B) {
	for _, mode := range []engine.Mode{engine.SCC2S, engine.OCCBC} {
		b.Run(mode.String(), func(b *testing.B) {
			s := engine.Open(engine.Config{Mode: mode})
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					_ = s.Update(func(tx *engine.Tx) error {
						v, err := tx.Get("hot")
						if err != nil {
							return err
						}
						var buf [8]byte
						binary.BigEndian.PutUint64(buf[:], binary.BigEndian.Uint64(pad(v))+1)
						return tx.Set("hot", buf[:])
					})
				}
			})
			st := s.Stats()
			b.ReportMetric(float64(st.Restarts)/float64(st.Commits+1), "restarts/commit")
			b.ReportMetric(float64(st.Promotions)/float64(st.Commits+1), "promotions/commit")
		})
	}
}

func pad(b []byte) []byte {
	if len(b) == 8 {
		return b
	}
	return make([]byte, 8)
}

// BenchmarkShardedStore sweeps the sharded serving layer: 1/4/16
// partitions under a low-contention mix (wide keyspace, conflicts rare —
// throughput should scale with shards as the per-shard latch stops being
// the bottleneck) and a high-contention mix (16 hot keys — sharding cannot
// help much because the contention is logical, not physical). Each op is
// the canonical read-modify-write increment on the single-shard fast path.
func BenchmarkShardedStore(b *testing.B) {
	mixes := []struct {
		name string
		keys int
	}{
		{"low", 65536},
		{"high", 16},
	}
	for _, shards := range []int{1, 4, 16} {
		for _, mix := range mixes {
			b.Run(fmt.Sprintf("shards=%d/%s", shards, mix.name), func(b *testing.B) {
				s := shard.Open(shard.Config{
					Shards: shards,
					Engine: engine.Config{Mode: engine.SCC2S},
				})
				defer s.Close()
				var worker atomic.Int64
				// Many in-flight transactions per core: the conflict
				// scans (Read/Write rules, broadcast commit) are O(active
				// set), which partitioning divides by the shard count —
				// the benchmark measures that even on one core.
				b.SetParallelism(32)
				b.RunParallel(func(pb *testing.PB) {
					// Deterministic per-goroutine key walk with a large
					// prime stride: disjoint-ish on the wide keyspace,
					// all-hot on the narrow one.
					i := int(worker.Add(1)) * 1_000_003
					keys := make([]string, 1)
					for pb.Next() {
						key := fmt.Sprintf("k%d", i%mix.keys)
						i += 7919
						keys[0] = key
						_ = s.Update(keys, func(tx shard.Tx) error {
							v, err := tx.Get(key)
							if err != nil {
								return err
							}
							var buf [8]byte
							binary.BigEndian.PutUint64(buf[:], binary.BigEndian.Uint64(pad(v))+1)
							return tx.Set(key, buf[:])
						})
					}
				})
				st := s.Stats()
				b.ReportMetric(float64(st.Engine.Restarts)/float64(st.TotalCommits()+1), "restarts/commit")
			})
		}
	}
}

// BenchmarkShardedCross measures the deterministic-order cross-shard
// commit: every transaction moves value between two keys on (almost
// always) different partitions of a 16-shard store.
func BenchmarkShardedCross(b *testing.B) {
	s := shard.Open(shard.Config{Shards: 16, Engine: engine.Config{Mode: engine.SCC2S}})
	defer s.Close()
	var worker atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		i := int(worker.Add(1)) * 1_000_003
		for pb.Next() {
			a := fmt.Sprintf("k%d", i%65536)
			c := fmt.Sprintf("k%d", (i+31)%65536)
			i += 7919
			keys := []string{a, c}
			_ = s.Update(keys, func(tx shard.Tx) error {
				va, err := tx.Get(a)
				if err != nil {
					return err
				}
				var buf [8]byte
				binary.BigEndian.PutUint64(buf[:], binary.BigEndian.Uint64(pad(va))+1)
				if err := tx.Set(a, buf[:]); err != nil {
					return err
				}
				return tx.Set(c, buf[:])
			})
		}
	})
	st := s.Stats()
	b.ReportMetric(float64(st.CrossRestarts)/float64(st.CrossCommits+1), "restarts/commit")
}

// startWireServer brings up a full TCP server for wire benchmarks.
func startWireServer(b *testing.B) string {
	b.Helper()
	srv := server.New(server.Config{Shards: 16})
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(lis)
	b.Cleanup(srv.Close)
	return lis.Addr().String()
}

// BenchmarkPerRoundTrip is the legacy wire path: every transaction costs
// one blocking round trip on its connection.
func BenchmarkPerRoundTrip(b *testing.B) {
	addr := startWireServer(b)
	c, err := client.Dial(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%1024)
		if _, err := c.Add(key, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelined is the same transaction stream over REQ/RES framing:
// one multiplexed connection keeps a window of transactions in flight via
// Batch, so the per-transaction round trip disappears.
func BenchmarkPipelined(b *testing.B) {
	addr := startWireServer(b)
	m, err := client.DialMux(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	const window = 64
	reqs := make([]client.UpdateReq, 0, window)
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := window
		if rem := b.N - done; rem < n {
			n = rem
		}
		reqs = reqs[:0]
		for j := 0; j < n; j++ {
			key := fmt.Sprintf("k%d", (done+j)%1024)
			reqs = append(reqs, client.UpdateReq{
				Ops: []client.Op{{Key: key, Delta: 1, Write: true}},
			})
		}
		for _, out := range m.Batch(reqs) {
			if out.Err != nil {
				b.Fatal(out.Err)
			}
		}
		done += n
	}
}

// BenchmarkEngineDisjoint is the uncontended fast path.
func BenchmarkEngineDisjoint(b *testing.B) {
	s := engine.Open(engine.Config{Mode: engine.SCC2S})
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("k%d", i%4096)
			i++
			_ = s.Update(func(tx *engine.Tx) error { return tx.Set(key, []byte{1}) })
		}
	})
}
